//! Operational observability: a zero-dependency, leveled, coded event
//! log plus process-wide live progress counters (DESIGN.md §16).
//!
//! The sweeps, the supervisor and the batch service all emit **events**
//! — small coded records with a monotonic sequence number and a
//! wall-clock stamp — through one global sink installed by the process
//! that wants them (`d2net-serve --events`, tests, ad-hoc tooling).
//! Rendered as JSONL under the `d2net.events/v1` schema, the stream
//! unifies what used to be scattered side channels: [`SweepNotice`]
//! stderr prints, supervision retries and chaos arms, and the
//! `ENV_INVALID` warnings of [`crate::envcfg`].
//!
//! **Observer-only invariant.** Nothing in this module may influence a
//! simulation result. Events and counters are written *about* runs,
//! never read *by* them; every emitter sits outside the deterministic
//! core (after `synthetic_stats`, at notice assembly, in retry loops).
//! All determinism gates — serial ≡ parallel ≡ sharded ≡ supervised
//! manifest bytes — hold with observability on or off, which
//! `tests/obs.rs` pins. Event *order* across worker threads is not
//! deterministic (the sequence number records arrival, not schedule);
//! the determinism contract covers results, not the log.
//!
//! When no sink is installed and observability is disabled (the
//! default), every hook is a single relaxed atomic load — sweeps in
//! library use pay nothing.

use crate::sweep::SweepNotice;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the JSONL event stream; the first line of every event
/// log file is `{"schema":"d2net.events/v1"}`.
pub const EVENTS_SCHEMA: &str = "d2net.events/v1";

/// Event severity. Order is meaningful: a minimum level filters
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One event of the `d2net.events/v1` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic per-process sequence number (assignment order).
    pub seq: u64,
    /// Wall-clock stamp, milliseconds since the Unix epoch.
    pub t_ms: u64,
    pub level: Level,
    /// Machine-readable discriminator — the same closed vocabulary the
    /// notices use (`"wedged"`, `"panicked"`, …) plus the operational
    /// codes (`"point_run"`, `"heartbeat"`, `"env_invalid"`, …).
    pub code: &'static str,
    /// Human-readable rendering (may be empty for pure-data events).
    pub message: String,
    /// Typed payload, flattened into the JSON object. Field names must
    /// avoid the reserved keys `seq`/`t_ms`/`level`/`code`/`message`.
    pub fields: Vec<(&'static str, Value)>,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    /// Floats use the journal's `{:.6}` convention so the stream stays
    /// locale- and shortest-repr-independent.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"t_ms\":{},\"level\":\"{}\",\"code\":",
            self.seq,
            self.t_ms,
            self.level.as_str()
        ));
        escape_into(&mut out, self.code);
        out.push_str(",\"message\":");
        escape_into(&mut out, &self.message);
        for (k, v) in &self.fields {
            debug_assert!(
                !matches!(*k, "seq" | "t_ms" | "level" | "code" | "message"),
                "event field '{k}' shadows a reserved key"
            );
            out.push(',');
            escape_into(&mut out, k);
            out.push(':');
            match v {
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::F64(x) => out.push_str(&format!("{x:.6}")),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => escape_into(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

/// Where emitted events go. Sinks run under the global emit lock, so an
/// implementation only needs interior consistency, not thread safety.
pub trait EventSink: Send {
    fn event(&mut self, ev: &Event);
    fn flush(&mut self) {}
}

/// Collects events in a shared buffer — the test sink.
pub struct MemorySink {
    buf: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Returns the sink plus the shared handle the test keeps to read
    /// what was captured after the sink itself was installed.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (Box<dyn EventSink>, Arc<Mutex<Vec<Event>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (Box::new(MemorySink { buf: buf.clone() }), buf)
    }
}

impl EventSink for MemorySink {
    fn event(&mut self, ev: &Event) {
        lock_ignoring_poison(&self.buf).push(ev.clone());
    }
}

/// Appends events as JSONL to a file, one line per event, flushed per
/// event so `d2net-top --events` can tail a live log. A freshly created
/// file starts with the `d2net.events/v1` schema header line.
pub struct FileSink {
    w: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Creates (or truncates) `path` and writes the schema header.
    pub fn create(path: &std::path::Path) -> std::io::Result<Box<dyn EventSink>> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "{{\"schema\":\"{EVENTS_SCHEMA}\"}}")?;
        w.flush()?;
        Ok(Box::new(FileSink { w }))
    }
}

impl EventSink for FileSink {
    fn event(&mut self, ev: &Event) {
        // An I/O failure must never take the run down: observability is
        // strictly weaker than the work it observes.
        let _ = writeln!(self.w, "{}", ev.render_json());
        let _ = self.w.flush();
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Debug as u8);
static SEQ: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Box<dyn EventSink>>> = Mutex::new(None);

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A sink that panicked mid-event must not wedge every later emit.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when observability hooks are live. The one check every hook
/// performs first; a relaxed load so disabled-mode cost is negligible.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the progress counters (and event emission, if a sink is
/// installed) on without requiring a sink — the batch service uses this
/// for `--status-addr` without `--events`.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns every hook back into a no-op. The sink, if any, stays
/// installed (use [`take_sink`] to retrieve and flush it).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Installs the global event sink (replacing any previous one, which is
/// flushed and dropped) and enables observability.
pub fn install_sink(sink: Box<dyn EventSink>) {
    let prev = lock_ignoring_poison(&SINK).replace(sink);
    if let Some(mut prev) = prev {
        prev.flush();
    }
    enable();
}

/// Removes and returns the global sink, flushing it first. Does not
/// flip [`enabled`] — progress counters keep ticking until [`disable`].
pub fn take_sink() -> Option<Box<dyn EventSink>> {
    let mut sink = lock_ignoring_poison(&SINK).take();
    if let Some(s) = sink.as_mut() {
        s.flush();
    }
    sink
}

/// Events below `level` are dropped at the emit site.
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::SeqCst);
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emits one event to the installed sink. A no-op unless [`enabled`]
/// and at or above the minimum level; callers building an expensive
/// message should guard on [`enabled`] themselves.
pub fn emit(level: Level, code: &'static str, message: String, fields: Vec<(&'static str, Value)>) {
    if !enabled() || (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let ev = Event {
        seq: SEQ.fetch_add(1, Ordering::SeqCst),
        t_ms: now_ms(),
        level,
        code,
        message,
        fields,
    };
    if let Some(sink) = lock_ignoring_poison(&SINK).as_mut() {
        sink.event(&ev);
    }
}

/// Routes a legacy coded stderr line: with observability enabled it
/// becomes a `Warn` event (the message is the coded string, verbatim);
/// disabled, it prints to stderr exactly as before. The migration shim
/// for `ENV_INVALID` / `JOURNAL_APPEND` warnings.
pub fn warn_line(code: &'static str, line: &str) {
    if enabled() {
        emit(Level::Warn, code, line.to_string(), Vec::new());
    } else {
        eprintln!("{line}");
    }
}

// ---------------------------------------------------------------------
// Live progress counters
// ---------------------------------------------------------------------

/// Process-wide progress counters, updated by the sweep harnesses while
/// [`enabled`]. Cumulative over the process lifetime; consumers (the
/// status endpoint, `d2net-top`) work with snapshots and deltas.
struct Progress {
    sweeps_started: AtomicU64,
    sweeps_finished: AtomicU64,
    /// Points scheduled across all sweeps started so far.
    points_total: AtomicU64,
    /// Point attempts that returned (live; counts every retry attempt).
    points_run: AtomicU64,
    points_completed: AtomicU64,
    points_retried: AtomicU64,
    points_panicked: AtomicU64,
    points_exhausted: AtomicU64,
    points_resumed: AtomicU64,
    points_not_run: AtomicU64,
    points_stubbed: AtomicU64,
    /// Retry attempts observed live in the supervisor's retry loop.
    retry_attempts: AtomicU64,
    /// Engine events processed across all completed point runs.
    events_processed: AtomicU64,
    /// Wall-clock microseconds spent inside point runs.
    point_wall_us: AtomicU64,
}

static PROGRESS: Progress = Progress {
    sweeps_started: AtomicU64::new(0),
    sweeps_finished: AtomicU64::new(0),
    points_total: AtomicU64::new(0),
    points_run: AtomicU64::new(0),
    points_completed: AtomicU64::new(0),
    points_retried: AtomicU64::new(0),
    points_panicked: AtomicU64::new(0),
    points_exhausted: AtomicU64::new(0),
    points_resumed: AtomicU64::new(0),
    points_not_run: AtomicU64::new(0),
    points_stubbed: AtomicU64::new(0),
    retry_attempts: AtomicU64::new(0),
    events_processed: AtomicU64::new(0),
    point_wall_us: AtomicU64::new(0),
};

/// A point-in-time copy of the progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    pub sweeps_started: u64,
    pub sweeps_finished: u64,
    pub points_total: u64,
    pub points_run: u64,
    pub points_completed: u64,
    pub points_retried: u64,
    pub points_panicked: u64,
    pub points_exhausted: u64,
    pub points_resumed: u64,
    pub points_not_run: u64,
    pub points_stubbed: u64,
    pub retry_attempts: u64,
    pub events_processed: u64,
    pub point_wall_us: u64,
}

impl ProgressSnapshot {
    /// Points accounted for by finished sweeps — completed, or coded
    /// into one of the exceptional categories. Equals `points_total`
    /// once every started sweep has finished.
    pub fn points_accounted(&self) -> u64 {
        self.points_completed
            + self.points_panicked
            + self.points_exhausted
            + self.points_resumed
            + self.points_not_run
            + self.points_stubbed
    }
}

/// Reads the current counters.
pub fn snapshot() -> ProgressSnapshot {
    let p = &PROGRESS;
    let ld = |a: &AtomicU64| a.load(Ordering::SeqCst);
    ProgressSnapshot {
        sweeps_started: ld(&p.sweeps_started),
        sweeps_finished: ld(&p.sweeps_finished),
        points_total: ld(&p.points_total),
        points_run: ld(&p.points_run),
        points_completed: ld(&p.points_completed),
        points_retried: ld(&p.points_retried),
        points_panicked: ld(&p.points_panicked),
        points_exhausted: ld(&p.points_exhausted),
        points_resumed: ld(&p.points_resumed),
        points_not_run: ld(&p.points_not_run),
        points_stubbed: ld(&p.points_stubbed),
        retry_attempts: ld(&p.retry_attempts),
        events_processed: ld(&p.events_processed),
        point_wall_us: ld(&p.point_wall_us),
    }
}

/// Zeroes every counter — test isolation only; production consumers
/// difference snapshots instead.
pub fn reset_progress() {
    let p = &PROGRESS;
    for a in [
        &p.sweeps_started,
        &p.sweeps_finished,
        &p.points_total,
        &p.points_run,
        &p.points_completed,
        &p.points_retried,
        &p.points_panicked,
        &p.points_exhausted,
        &p.points_resumed,
        &p.points_not_run,
        &p.points_stubbed,
        &p.retry_attempts,
        &p.events_processed,
        &p.point_wall_us,
    ] {
        a.store(0, Ordering::SeqCst);
    }
}

/// Final per-category accounting of one sweep, in the supervisor's
/// dialect ([`crate::supervise::SupervisionSummary`]): `completed`
/// includes wedges (a wedge is a result), the other buckets are the
/// exceptional paths, and the buckets partition the load grid —
/// `completed + panicked + exhausted + resumed + not_run + stubbed`
/// equals the sweep's point count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepAccounting {
    pub completed: u64,
    /// Of `completed`, points that needed at least one retry.
    pub retried: u64,
    pub panicked: u64,
    pub exhausted: u64,
    pub resumed: u64,
    pub not_run: u64,
    pub stubbed: u64,
}

/// A sweep is starting over `points` loads.
pub fn sweep_started(points: usize) {
    if !enabled() {
        return;
    }
    PROGRESS.sweeps_started.fetch_add(1, Ordering::SeqCst);
    PROGRESS.points_total.fetch_add(points as u64, Ordering::SeqCst);
    emit(
        Level::Info,
        "sweep_start",
        format!("sweep started over {points} points"),
        vec![("points", points.into())],
    );
}

/// A sweep finished; folds its accounting into the global counters.
pub fn sweep_finished(acc: &SweepAccounting) {
    if !enabled() {
        return;
    }
    let p = &PROGRESS;
    p.sweeps_finished.fetch_add(1, Ordering::SeqCst);
    p.points_completed.fetch_add(acc.completed, Ordering::SeqCst);
    p.points_retried.fetch_add(acc.retried, Ordering::SeqCst);
    p.points_panicked.fetch_add(acc.panicked, Ordering::SeqCst);
    p.points_exhausted.fetch_add(acc.exhausted, Ordering::SeqCst);
    p.points_resumed.fetch_add(acc.resumed, Ordering::SeqCst);
    p.points_not_run.fetch_add(acc.not_run, Ordering::SeqCst);
    p.points_stubbed.fetch_add(acc.stubbed, Ordering::SeqCst);
    emit(
        Level::Info,
        "sweep_done",
        format!(
            "sweep finished: {} completed, {} panicked, {} exhausted, \
             {} resumed, {} not run, {} stubbed",
            acc.completed, acc.panicked, acc.exhausted, acc.resumed, acc.not_run, acc.stubbed
        ),
        vec![
            ("completed", acc.completed.into()),
            ("retried", acc.retried.into()),
            ("panicked", acc.panicked.into()),
            ("exhausted", acc.exhausted.into()),
            ("resumed", acc.resumed.into()),
            ("not_run", acc.not_run.into()),
            ("stubbed", acc.stubbed.into()),
        ],
    );
}

/// One point attempt returned a real result: live progress plus the
/// per-point wall-clock and engine-event count.
#[allow(clippy::too_many_arguments)]
pub fn point_run(
    index: usize,
    load: f64,
    wall_ms: f64,
    events: u64,
    throughput: f64,
    deadlocked: bool,
    exhausted: bool,
) {
    if !enabled() {
        return;
    }
    PROGRESS.points_run.fetch_add(1, Ordering::SeqCst);
    PROGRESS.events_processed.fetch_add(events, Ordering::SeqCst);
    PROGRESS
        .point_wall_us
        .fetch_add((wall_ms * 1_000.0) as u64, Ordering::SeqCst);
    emit(
        Level::Info,
        "point_run",
        format!("point {index} at load {load:.3} ran in {wall_ms:.1} ms ({events} events)"),
        vec![
            ("index", index.into()),
            ("load", load.into()),
            ("wall_ms", wall_ms.into()),
            ("events", events.into()),
            ("throughput", throughput.into()),
            ("deadlocked", deadlocked.into()),
            ("exhausted", exhausted.into()),
        ],
    );
}

/// One point attempt panicked and was isolated.
pub fn point_panic(index: usize, load: f64, wall_ms: f64, msg: &str) {
    if !enabled() {
        return;
    }
    PROGRESS.points_run.fetch_add(1, Ordering::SeqCst);
    PROGRESS
        .point_wall_us
        .fetch_add((wall_ms * 1_000.0) as u64, Ordering::SeqCst);
    emit(
        Level::Warn,
        "point_panic",
        format!("point {index} at load {load:.3} panicked: {msg}"),
        vec![
            ("index", index.into()),
            ("load", load.into()),
            ("wall_ms", wall_ms.into()),
        ],
    );
}

/// The supervisor is about to retry a failed point attempt.
pub fn retry(index: usize, load: f64, attempt: u32, reason: &'static str) {
    if !enabled() {
        return;
    }
    PROGRESS.retry_attempts.fetch_add(1, Ordering::SeqCst);
    emit(
        Level::Warn,
        "point_retry",
        format!("point {index} at load {load:.3} retrying (attempt {attempt}): {reason}"),
        vec![
            ("index", index.into()),
            ("load", load.into()),
            ("attempt", attempt.into()),
            ("reason", reason.into()),
        ],
    );
}

/// The chaos registry armed a fault for a (point, attempt).
pub fn chaos_armed(index: usize, attempt: u32, kind: &'static str, after_events: u64) {
    if !enabled() {
        return;
    }
    emit(
        Level::Debug,
        "chaos_armed",
        format!("chaos {kind} armed for point {index} attempt {attempt}"),
        vec![
            ("index", index.into()),
            ("attempt", attempt.into()),
            ("kind", kind.into()),
            ("after_events", after_events.into()),
        ],
    );
}

/// Routes a [`SweepNotice`] into the event stream at its assembly site:
/// the event's code is the notice's code and the message is the
/// `render()` string, verbatim — the same coded line that previously
/// only reached stderr.
pub fn notice(n: &SweepNotice) {
    if !enabled() {
        return;
    }
    emit(
        Level::Warn,
        n.code,
        n.render(),
        vec![("index", n.index.into()), ("load", n.load.into())],
    );
}

// ---------------------------------------------------------------------
// Per-run engine event counts
// ---------------------------------------------------------------------

thread_local! {
    /// Engine events of the run that most recently finalized on this
    /// thread — written by `Engine::synthetic_stats`, consumed by the
    /// point runner that drove the run (serial and sharded runs both
    /// finalize on the driving thread).
    static RUN_EVENTS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Records the engine-event count of the run finalizing on this thread.
pub fn note_run_events(n: u64) {
    RUN_EVENTS.with(|c| c.set(n));
}

/// Takes (and clears) the last recorded engine-event count, so a
/// panicked or skipped run never inherits its predecessor's count.
pub fn take_run_events() -> u64 {
    RUN_EVENTS.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test here mutates process-global state; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        let g = lock_ignoring_poison(&LOCK);
        reset_progress();
        let _ = take_sink();
        disable();
        g
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = guard();
        sweep_started(10);
        point_run(0, 0.5, 1.0, 100, 0.4, false, false);
        sweep_finished(&SweepAccounting {
            completed: 10,
            ..Default::default()
        });
        assert_eq!(snapshot(), ProgressSnapshot::default());
    }

    #[test]
    fn events_render_as_escaped_single_line_json() {
        let ev = Event {
            seq: 7,
            t_ms: 123,
            level: Level::Warn,
            code: "panicked",
            message: "a \"quoted\"\nline\t\\".to_string(),
            fields: vec![
                ("index", 3usize.into()),
                ("load", 0.25f64.into()),
                ("ok", false.into()),
                ("tag", "x\"y".into()),
            ],
        };
        let line = ev.render_json();
        assert!(!line.contains('\n'), "one line: {line}");
        assert_eq!(
            line,
            "{\"seq\":7,\"t_ms\":123,\"level\":\"warn\",\"code\":\"panicked\",\
             \"message\":\"a \\\"quoted\\\"\\nline\\t\\\\\",\
             \"index\":3,\"load\":0.250000,\"ok\":false,\"tag\":\"x\\\"y\"}"
        );
    }

    #[test]
    fn memory_sink_captures_with_monotonic_seq_and_level_filter() {
        let _g = guard();
        let (sink, buf) = MemorySink::new();
        install_sink(sink);
        set_min_level(Level::Info);
        emit(Level::Debug, "chaos_armed", "dropped".into(), vec![]);
        emit(Level::Info, "sweep_start", "kept".into(), vec![]);
        emit(Level::Warn, "wedged", "kept too".into(), vec![]);
        set_min_level(Level::Debug);
        let _ = take_sink();
        disable();
        let events = buf.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].code, "sweep_start");
        assert_eq!(events[1].code, "wedged");
        assert!(events[0].seq < events[1].seq, "seq must be monotonic");
    }

    #[test]
    fn warn_line_becomes_event_when_enabled() {
        let _g = guard();
        let (sink, buf) = MemorySink::new();
        install_sink(sink);
        warn_line("env_invalid", "d2net: WARN ENV_INVALID X='y'");
        let _ = take_sink();
        disable();
        let events = buf.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].code, "env_invalid");
        assert_eq!(events[0].message, "d2net: WARN ENV_INVALID X='y'");
        assert_eq!(events[0].level, Level::Warn);
    }

    #[test]
    fn progress_counters_fold_sweep_accounting() {
        let _g = guard();
        enable();
        sweep_started(6);
        point_run(0, 0.1, 2.0, 500, 0.1, false, false);
        point_panic(1, 0.2, 0.5, "boom");
        retry(1, 0.2, 1, "panic");
        sweep_finished(&SweepAccounting {
            completed: 3,
            retried: 1,
            panicked: 1,
            exhausted: 1,
            resumed: 0,
            not_run: 0,
            stubbed: 1,
        });
        let s = snapshot();
        disable();
        assert_eq!(s.points_total, 6);
        assert_eq!(s.points_run, 2);
        assert_eq!(s.events_processed, 500);
        assert_eq!(s.retry_attempts, 1);
        assert_eq!(s.points_accounted(), 6, "buckets partition the grid");
        assert!(s.point_wall_us >= 2_500);
    }

    #[test]
    fn run_events_note_is_take_once() {
        let _g = guard();
        note_run_events(42);
        assert_eq!(take_run_events(), 42);
        assert_eq!(take_run_events(), 0, "second take sees a cleared cell");
    }
}
