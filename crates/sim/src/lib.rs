//! # d2net-sim
//!
//! A from-scratch discrete-event flit/packet-level interconnect simulator
//! reproducing the evaluation substrate of Kathareios et al. (SC '15,
//! §4.1): virtual-channel input-output-buffered switches, credit-based
//! flow control, 100 KB buffers per port per direction, 100 ns switch
//! traversal, 100 Gb/s links with 50 ns latency, 256 B packets.
//!
//! Entry points:
//! - [`run_synthetic`] — steady-state uniform / permutation traffic with
//!   warm-up, reporting accepted throughput and mean packet delay;
//! - [`run_exchange`] — fixed-size collective exchanges (A2A / NN) run to
//!   completion, reporting effective throughput;
//! - [`sweep::load_sweep`] — the offered-load axes of Figs. 6–12;
//! - [`run_synthetic_probed`] / [`run_exchange_probed`] /
//!   [`sweep::load_sweep_probed`] — the same runs with an observability
//!   probe attached (see [`telemetry`]): utilization/occupancy series,
//!   per-router event rings and deadlock forensics;
//! - [`par::par_load_sweep`] / [`par::par_curves`] — the same sweeps fanned
//!   out across a scoped worker pool, byte-identical to the serial runs
//!   (per-point seeds are index-derived; see [`par`]);
//! - [`run_synthetic_sharded`] and friends — single runs partitioned
//!   across router shards in conservative time windows, byte-identical
//!   to serial at any shard count (see [`shard`]); the sweeps compose
//!   shard- with point-level parallelism under one thread budget.

pub mod config;
pub mod engine;
pub mod envcfg;
pub mod equeue;
pub mod fault;
pub mod injector;
pub mod ledger;
pub mod obs;
pub mod par;
pub mod shard;
pub mod stats;
pub mod supervise;
pub mod sweep;
pub mod telemetry;
pub mod trace;

pub use config::{ChaosKind, EngineChaos, EventQueueKind, Preflight, RunBudget, SimConfig};
pub use engine::{
    preflight, run_exchange, run_exchange_probed, run_exchange_traced, run_synthetic,
    run_synthetic_faulted, run_synthetic_faulted_probed, run_synthetic_ledgered,
    run_synthetic_probed, run_synthetic_traced, Engine, EngineFault,
};
pub use equeue::CalendarStats;
pub use fault::{FaultEvent, FaultSchedule};
pub use ledger::{
    ledger_metrics, DecisionLedger, DecisionSample, EngineLedger, LedgerConfig, PointLedger,
    PortHeat, RouterDecisionStats, LEDGER_TOP_N, MARGIN_BOUNDS_BYTES,
};
pub use par::{
    par_curves, par_load_sweep, par_load_sweep_collect, par_load_sweep_ledgered_collect,
    par_load_sweep_probed, par_load_sweep_probed_collect, par_load_sweep_traced_collect,
    par_load_sweep_with_order, resolve_threads,
};
pub use shard::{
    plan_shards, run_synthetic_sharded, run_synthetic_sharded_faulted,
    run_synthetic_sharded_faulted_probed, run_synthetic_sharded_ledgered,
    run_synthetic_sharded_probed, run_synthetic_sharded_traced,
};
pub use stats::{DelayHistogram, ExchangeStats, SyntheticStats};
pub use supervise::{
    backoff_ms, supervised_load_sweep_collect, supervised_load_sweep_hooked, ChaosConfig,
    SupervisedSweep, SuperviseConfig, SuperviseHooks, SupervisionSummary,
};
pub use sweep::{
    load_grid, load_grid_from, load_sweep, load_sweep_collect, load_sweep_ledgered_collect,
    load_sweep_probed, load_sweep_probed_collect, load_sweep_traced_collect, point_seed,
    saturation_throughput, SweepNotice, SweepOutcome, SweepPoint,
};
pub use telemetry::{
    DeadlockReport, ProbeConfig, RingEvent, RingEventKind, TelemetryReport, TelemetrySummary,
    WaitPoint, WaitSide,
};
pub use trace::{
    flight_sampled, sweep_metrics, EngineTrace, FlightEvent, FlightEventKind, HarnessSpan,
    HotCounters, Metric, MetricValue, MetricsRegistry, PacketFlight, PhaseSpan, PointTrace,
    SimPhase, SpanProfiler, TraceConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use d2net_routing::{Algorithm, IntermediateSet, RoutePolicy, VcScheme};
    use d2net_topo::{
        fat_tree2, hyperx2_balanced, mlfm, oft, slim_fly, Network, SlimFlyP, TopologyKind,
    };
    use d2net_traffic::{all_to_all, worst_case, SyntheticPattern};

    /// Two routers, one node each, one link: the smallest network with a
    /// fully analyzable end-to-end latency.
    fn two_routers() -> Network {
        Network::from_parts(
            TopologyKind::Custom {
                label: "pair".into(),
            },
            vec![vec![1], vec![0]],
            vec![1, 1],
        )
    }

    #[test]
    fn single_hop_latency_is_analytic() {
        // node-ser + link + switch + ser + link + switch + ser + link
        // = 3·20480 + 3·50000 + 2·100000 = 411440 ps at the defaults.
        let net = two_routers();
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let pattern = SyntheticPattern::Permutation(vec![1, 0]);
        let stats = run_synthetic(
            &net,
            &policy,
            &pattern,
            0.01, // one packet every 2048 ns: zero queueing
            200_000,
            20_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(stats.delivered_packets > 50);
        assert!(
            (stats.avg_delay_ns - 411.44).abs() < 0.5,
            "expected ≈411.44 ns, got {}",
            stats.avg_delay_ns
        );
    }

    #[test]
    fn two_hop_latency_adds_one_stage() {
        // A distance-2 pair adds one switch traversal, one serialization
        // and one link: 411440 + 170480 = 581920 ps. Drive a single
        // distance-2 node pair (everything else "sends to itself" via a
        // router-local turnaround) and read the max delay.
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let r1 = (1..net.num_routers())
            .find(|&r| !net.are_adjacent(0, r))
            .unwrap();
        let mut perm: Vec<u32> = (0..net.num_nodes()).collect();
        let a = net.router_nodes(0).start;
        let b = net.router_nodes(r1).start;
        perm.swap(a as usize, b as usize);
        let pattern = SyntheticPattern::Permutation(perm);
        let stats = run_synthetic(
            &net,
            &policy,
            &pattern,
            0.005,
            400_000,
            40_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(
            (stats.max_delay_ns as f64 - 581.92).abs() < 1.0,
            "expected ≈581.92 ns max, got {}",
            stats.max_delay_ns
        );
    }

    #[test]
    fn uniform_low_load_throughput_tracks_offered() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let stats = run_synthetic(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            0.3,
            100_000,
            20_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(
            (stats.throughput - 0.3).abs() < 0.02,
            "accepted {} at offered 0.3",
            stats.throughput
        );
    }

    #[test]
    fn mlfm_worst_case_saturates_at_one_over_h() {
        let net = mlfm(4);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let pattern = worst_case(&net);
        let stats = run_synthetic(
            &net,
            &policy,
            &pattern,
            1.0,
            150_000,
            30_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(
            (stats.throughput - 0.25).abs() < 0.03,
            "h = 4 worst case must cap at 1/h = 0.25, got {}",
            stats.throughput
        );
    }

    #[test]
    fn oft_worst_case_saturates_at_one_over_k() {
        let net = oft(4);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let pattern = worst_case(&net);
        let stats = run_synthetic(
            &net,
            &policy,
            &pattern,
            1.0,
            150_000,
            30_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(
            (stats.throughput - 0.25).abs() < 0.03,
            "k = 4 worst case must cap at 1/k = 0.25, got {}",
            stats.throughput
        );
    }

    #[test]
    fn valiant_halves_uniform_capacity() {
        let net = mlfm(4);
        let min_p = RoutePolicy::new(&net, Algorithm::Minimal);
        let inr_p = RoutePolicy::new(&net, Algorithm::Valiant);
        let cfg = SimConfig::default();
        let min = run_synthetic(&net, &min_p, &SyntheticPattern::Uniform, 1.0, 100_000, 20_000, cfg);
        let inr = run_synthetic(&net, &inr_p, &SyntheticPattern::Uniform, 1.0, 100_000, 20_000, cfg);
        assert!(!min.deadlocked && !inr.deadlocked);
        assert!(min.throughput > 0.9, "MIN uniform ≈ full bw, got {}", min.throughput);
        assert!(
            (inr.throughput - 0.5).abs() < 0.08,
            "INR uniform ≈ half bw, got {}",
            inr.throughput
        );
        // All but the router-local (same source router) packets go indirect.
        assert!(inr.indirect_packets as f64 > 0.9 * inr.delivered_packets as f64);
    }

    #[test]
    fn valiant_rescues_worst_case() {
        let net = mlfm(4);
        let pattern = worst_case(&net);
        let cfg = SimConfig::default();
        let min_p = RoutePolicy::new(&net, Algorithm::Minimal);
        let inr_p = RoutePolicy::new(&net, Algorithm::Valiant);
        let min = run_synthetic(&net, &min_p, &pattern, 1.0, 100_000, 20_000, cfg);
        let inr = run_synthetic(&net, &inr_p, &pattern, 1.0, 100_000, 20_000, cfg);
        // §4.3.1: INR lifts WC throughput from 1/h toward ~0.5.
        assert!(min.throughput < 0.3);
        assert!(
            inr.throughput > 1.5 * min.throughput,
            "INR {} vs MIN {}",
            inr.throughput,
            min.throughput
        );
    }

    #[test]
    fn ugal_matches_min_on_uniform_and_helps_worst_case() {
        let net = mlfm(4);
        let cfg = SimConfig::default();
        let ugal = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
        );
        let uni = run_synthetic(&net, &ugal, &SyntheticPattern::Uniform, 0.8, 100_000, 20_000, cfg);
        assert!(!uni.deadlocked);
        assert!(
            uni.throughput > 0.75,
            "UGAL uniform at 0.8 load: {}",
            uni.throughput
        );
        let wc = run_synthetic(&net, &ugal, &worst_case(&net), 0.4, 100_000, 20_000, cfg);
        assert!(!wc.deadlocked);
        assert!(
            wc.throughput > 0.3,
            "UGAL worst-case at 0.4 load: {}",
            wc.throughput
        );
    }

    #[test]
    fn broken_single_vc_wedges_or_collapses() {
        // Ablation §3.4: indirect routing with one VC admits CDG cycles.
        // Under pressure with tiny buffers the simulator must either wedge
        // outright or collapse far below the 2-VC throughput.
        let net = mlfm(4);
        let cfg = SimConfig {
            buffer_bytes: 1024,
            ..Default::default()
        };
        let good = RoutePolicy::new(&net, Algorithm::Valiant);
        let bad = RoutePolicy::with_overrides(
            &net,
            Algorithm::Valiant,
            VcScheme::SingleVc,
            IntermediateSet::EndpointRouters,
            false,
        );
        let pattern = worst_case(&net);
        let g = run_synthetic(&net, &good, &pattern, 1.0, 150_000, 30_000, cfg);
        let b = run_synthetic(&net, &bad, &pattern, 1.0, 150_000, 30_000, cfg);
        assert!(!g.deadlocked, "2-VC run must stay live");
        assert!(
            b.deadlocked || b.throughput < 0.5 * g.throughput,
            "single-VC indirect routing should wedge or collapse: good={} bad={} deadlocked={}",
            g.throughput,
            b.throughput,
            b.deadlocked
        );
    }

    #[test]
    fn ugal_g_handles_worst_case_at_least_as_well() {
        // The idealized global variant should not underperform local UGAL
        // on the adversarial pattern.
        let net = mlfm(4);
        let cfg = SimConfig::default();
        let wc = worst_case(&net);
        let local = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
        );
        let global = RoutePolicy::new(&net, Algorithm::UgalG { n_i: 4, c: 2.0 });
        let l = run_synthetic(&net, &local, &wc, 1.0, 100_000, 20_000, cfg);
        let g = run_synthetic(&net, &global, &wc, 1.0, 100_000, 20_000, cfg);
        assert!(!l.deadlocked && !g.deadlocked);
        assert!(
            g.throughput > 0.8 * l.throughput,
            "UGAL-G {} should be competitive with UGAL-L {}",
            g.throughput,
            l.throughput
        );
    }

    #[test]
    fn a2a_exchange_completes_and_is_fast() {
        let net = fat_tree2(4);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let ex = all_to_all(net.num_nodes(), 1024);
        let stats = run_exchange(&net, &policy, &ex, 1, SimConfig::default());
        assert!(!stats.deadlocked);
        assert_eq!(stats.delivered_bytes, ex.total_bytes());
        assert!(stats.effective_throughput > 0.4, "{}", stats.effective_throughput);
    }

    #[test]
    fn exchange_on_oft_with_adaptive_routing() {
        let net = oft(3);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 1,
                c: 2.0,
                threshold: Some(0.1),
            },
        );
        let ex = all_to_all(net.num_nodes(), 512);
        let stats = run_exchange(&net, &policy, &ex, 1, SimConfig::default());
        assert!(!stats.deadlocked);
        assert_eq!(stats.delivered_bytes, ex.total_bytes());
    }

    #[test]
    fn worst_case_bottleneck_link_runs_hot() {
        // Under the MLFM worst case the single-path bottleneck links are
        // the limiting resource: the busiest link must run near 100%.
        let net = mlfm(4);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let stats = run_synthetic(
            &net,
            &policy,
            &worst_case(&net),
            1.0,
            100_000,
            20_000,
            SimConfig::default(),
        );
        assert!(
            stats.max_link_utilization > 0.95,
            "bottleneck link utilization {}",
            stats.max_link_utilization
        );
        // While accepted throughput is capped at 1/h.
        assert!(stats.throughput < 0.3);
    }

    #[test]
    fn poisson_arrivals_raise_delay_at_equal_load() {
        let net = oft(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let base = SimConfig::default();
        let det = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.7, 60_000, 12_000, base);
        let exp = run_synthetic(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            0.7,
            60_000,
            12_000,
            SimConfig {
                arrival: config::Arrival::Exponential,
                ..base
            },
        );
        assert!(!det.deadlocked && !exp.deadlocked);
        // Same accepted load...
        assert!((det.throughput - exp.throughput).abs() < 0.03);
        // ...but the burstier process queues longer.
        assert!(
            exp.avg_delay_ns > det.avg_delay_ns,
            "Poisson {} vs deterministic {}",
            exp.avg_delay_ns,
            det.avg_delay_ns
        );
    }

    #[test]
    fn hop_counts_match_routing_mode() {
        let net = mlfm(4);
        let cfg = SimConfig::default();
        let min_p = RoutePolicy::new(&net, Algorithm::Minimal);
        let inr_p = RoutePolicy::new(&net, Algorithm::Valiant);
        let min = run_synthetic(&net, &min_p, &SyntheticPattern::Uniform, 0.3, 40_000, 8_000, cfg);
        let inr = run_synthetic(&net, &inr_p, &SyntheticPattern::Uniform, 0.3, 40_000, 8_000, cfg);
        // Minimal: nearly all routes are 2 hops (a few same-router zeros).
        assert!((1.6..=2.0).contains(&min.avg_hops), "MIN hops {}", min.avg_hops);
        // Valiant on an SSPT: 4 hops for all inter-router traffic.
        assert!((3.4..=4.0).contains(&inr.avg_hops), "INR hops {}", inr.avg_hops);
        // p99 sits above the mean and below the max.
        assert!(min.p99_delay_ns as f64 >= min.avg_delay_ns * 0.5);
        assert!(min.p99_delay_ns <= min.max_delay_ns * 4);
    }

    #[test]
    fn ejection_bottleneck_caps_hotspot_throughput() {
        // Three routers in a line network: nodes on routers 0 and 2 both
        // send everything to the single node on router 1. The ejection
        // link serializes, so each sender gets at most ~half bandwidth.
        let net = Network::from_parts(
            TopologyKind::Custom {
                label: "hotspot".into(),
            },
            vec![vec![1], vec![0, 2], vec![1]],
            vec![1, 1, 1],
        );
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        // Node ids: 0 on router 0, 1 on router 1, 2 on router 2.
        let pattern = SyntheticPattern::Permutation(vec![1, 2, 1]);
        let stats = run_synthetic(
            &net,
            &policy,
            &pattern,
            1.0,
            100_000,
            20_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        // Aggregate accepted: node 1 receives at link rate (1.0) and node
        // 2 receives node 1's flow at full rate: (1.0 + 1.0)/3 ≈ 0.667.
        assert!(
            (stats.throughput - 2.0 / 3.0).abs() < 0.05,
            "hotspot aggregate should be ~0.667, got {}",
            stats.throughput
        );
    }

    #[test]
    fn delay_rises_with_load() {
        let net = oft(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let lo = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.1, 60_000, 12_000, cfg);
        let hi = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.9, 60_000, 12_000, cfg);
        assert!(
            hi.avg_delay_ns > lo.avg_delay_ns,
            "queueing delay must grow with load: {} vs {}",
            lo.avg_delay_ns,
            hi.avg_delay_ns
        );
        // At 10% load, delay is close to the zero-load path latency
        // (≈580-590 ns for a diameter-2 route plus some router-local
        // deliveries).
        assert!(lo.avg_delay_ns < 800.0, "low-load delay {}", lo.avg_delay_ns);
    }

    #[test]
    fn empty_exchange_finishes_instantly() {
        let net = oft(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let ex = d2net_traffic::Exchange {
            sends: vec![Vec::new(); net.num_nodes() as usize],
            label: "empty".into(),
        };
        let stats = run_exchange(&net, &policy, &ex, 1, SimConfig::default());
        assert!(!stats.deadlocked);
        assert_eq!(stats.delivered_bytes, 0);
        assert_eq!(stats.completion_ns, 0);
    }

    #[test]
    fn tiny_buffers_still_make_progress() {
        // One packet per VC buffer: maximum backpressure, but the paper's
        // VC scheme must still deliver (just slowly).
        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let cfg = SimConfig {
            buffer_bytes: 512, // 256 per VC = exactly one packet
            ..Default::default()
        };
        let stats = run_synthetic(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            0.5,
            80_000,
            16_000,
            cfg,
        );
        assert!(!stats.deadlocked, "paper VC scheme must stay live");
        assert!(stats.delivered_packets > 100);
    }

    #[test]
    fn hyperx_simulates_with_generic_scheme() {
        // HyperX uses the hop-indexed fallback VC scheme; make sure the
        // whole pipeline holds together for the baseline topology too.
        let net = hyperx2_balanced(9);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let stats = run_synthetic(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            0.8,
            60_000,
            12_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(stats.throughput > 0.7, "{}", stats.throughput);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let cfg = SimConfig::default();
        let a = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.5, 60_000, 10_000, cfg);
        let b = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.5, 60_000, 10_000, cfg);
        assert_eq!(a, b);
        let c = run_synthetic(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            0.5,
            60_000,
            10_000,
            SimConfig { seed: 99, ..cfg },
        );
        assert_ne!(a.delivered_packets, 0);
        assert_ne!(a, c, "different seeds should perturb the run");
    }

    #[test]
    fn throughput_never_exceeds_offered_or_unity() {
        let net = oft(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        for load in [0.2, 0.6, 1.0] {
            let s = run_synthetic(
                &net,
                &policy,
                &SyntheticPattern::Uniform,
                load,
                80_000,
                16_000,
                SimConfig::default(),
            );
            assert!(s.throughput <= load + 0.02, "load={load}: {}", s.throughput);
            assert!(s.throughput <= 1.0 + 1e-9);
            assert!(s.throughput > 0.0);
        }
    }

    // ----- mid-run faults (drain-or-drop, DESIGN.md §10) -------------

    #[test]
    fn empty_fault_schedule_matches_unfaulted_run() {
        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let plain = run_synthetic(&net, &policy, &SyntheticPattern::Uniform, 0.4, 60_000, 10_000, cfg);
        let faulted = run_synthetic_faulted(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &FaultSchedule::new(),
            0.4,
            60_000,
            10_000,
            cfg,
        )
        .expect("empty schedule is a valid run");
        assert_eq!(plain, faulted, "no faults must mean a byte-identical run");
        assert_eq!(faulted.dropped_packets, 0);
        assert_eq!(faulted.retried_packets, 0);
    }

    #[test]
    fn midrun_link_failure_degrades_gracefully() {
        // Fail one link of a Slim Fly a third of the way into the run:
        // the repaired (hop-indexed) policy takes over for new traffic
        // and the run finishes without wedging.
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_link(0, net.neighbors(0)[0]);
        let schedule = FaultSchedule::new().at(20_000, fs);
        let stats = run_synthetic_faulted(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &schedule,
            0.4,
            60_000,
            10_000,
            cfg,
        )
        .expect("degraded slim fly remains simulable");
        assert!(!stats.deadlocked, "one failed link must not wedge the run");
        assert!(stats.delivered_packets > 100);
    }

    #[test]
    fn partitioning_the_only_link_drops_traffic_without_wedging() {
        // The pair network has exactly one link; killing it mid-run
        // strands cross traffic. Drops (in-flight drain-or-drop plus
        // source-side retry exhaustion) must account for every stranded
        // packet, so the run ends cleanly instead of wedging.
        let net = two_routers();
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_link(0, 1);
        let schedule = FaultSchedule::new().at(40_000, fs);
        let stats = run_synthetic_faulted(
            &net,
            &policy,
            &SyntheticPattern::Permutation(vec![1, 0]),
            &schedule,
            0.5,
            160_000,
            8_000,
            cfg,
        )
        .expect("a partitioned pair still simulates");
        assert!(
            !stats.deadlocked,
            "accounted drops must keep a partition from reading as deadlock"
        );
        assert!(stats.delivered_packets > 0, "pre-fault traffic delivered");
        assert!(
            stats.dropped_packets > 0,
            "post-fault traffic must be dropped, not lost silently"
        );
    }

    #[test]
    fn faulted_probe_records_link_down_events() {
        let net = two_routers();
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_link(0, 1);
        let schedule = FaultSchedule::new().at(30_000, fs);
        let (stats, report) = run_synthetic_faulted_probed(
            &net,
            &policy,
            &SyntheticPattern::Permutation(vec![1, 0]),
            &schedule,
            0.5,
            120_000,
            8_000,
            cfg,
            ProbeConfig::default(),
        )
        .expect("probed faulted run");
        assert!(stats.dropped_packets > 0);
        let downs: usize = report
            .rings
            .iter()
            .flat_map(|ring| ring.iter())
            .filter(|e| matches!(e.kind, RingEventKind::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2, "one LinkDown per endpoint router");
    }

    #[test]
    fn router_failure_orphans_its_destinations() {
        // Killing a router mid-run makes every destination behind it
        // unroutable: sources park, back off, and eventually drop those
        // packets at the source.
        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let victim = net.endpoint_routers()[0];
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_router(victim);
        let schedule = FaultSchedule::new().at(20_000, fs);
        let stats = run_synthetic_faulted(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &schedule,
            0.3,
            120_000,
            10_000,
            cfg,
        )
        .expect("degraded mlfm remains simulable");
        assert!(!stats.deadlocked);
        assert!(stats.dropped_packets > 0, "orphaned traffic must be dropped");
    }

    #[test]
    fn fault_schedule_with_nonsense_ids_is_harmless() {
        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig::default();
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_link(10_000, 10_001); // out of range
        fs.fail_link(0, 1); // not necessarily adjacent
        let schedule = FaultSchedule::new().at(20_000, fs);
        let stats = run_synthetic_faulted(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &schedule,
            0.3,
            60_000,
            10_000,
            cfg,
        )
        .expect("invalid fault ids are filtered, not fatal");
        assert!(!stats.deadlocked);
    }

    #[test]
    fn retry_injects_after_policy_recovery_event() {
        use crate::engine::synthetic_sources;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let net = mlfm(3);
        let full = RoutePolicy::new(&net, Algorithm::Minimal);
        // A policy repaired around a *virtually* failed router: valid on
        // the real network, but blind to the victim's destinations.
        let victim = net.endpoint_routers()[0];
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_router(victim);
        let blind = RoutePolicy::repair(&net.degrade(&fs), Algorithm::Minimal);
        assert!(blind.tables().unreachable_pairs() > 0);

        let cfg = SimConfig::default();
        let end_ps = 120_000 * 1_000u64;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let sources =
            synthetic_sources(&net, &SyntheticPattern::Uniform, 0.3, end_ps, &cfg, &mut rng);
        // No ports die. At 20µs injections go blind — traffic toward the
        // victim parks for retry, because the 40µs event can still route
        // it. After 40µs the parked packets inject on retry.
        let events = vec![
            EngineFault {
                t_ps: 20_000_000,
                faults: d2net_topo::FaultSet::new(),
                policy: &blind,
            },
            EngineFault {
                t_ps: 40_000_000,
                faults: d2net_topo::FaultSet::new(),
                policy: &full,
            },
        ];
        let mut engine =
            Engine::try_new_faulted(&net, &full, cfg, sources, 10_000_000, rng, events)
                .expect("recovery schedule builds");
        let (stats, _) = engine.run_synthetic_to(0.3, end_ps);
        assert!(!stats.deadlocked);
        assert!(
            stats.retried_packets > 0,
            "packets parked during the blind window must inject after recovery"
        );
        assert!(stats.delivered_packets > 0);
    }

    #[test]
    fn statically_severed_destinations_drop_without_stalling_sources() {
        // A permanently orphaned router (no recovery pending) must not
        // head-of-line-block healthy traffic: drops are immediate and
        // the rest of the network keeps its throughput.
        let net = mlfm(3);
        let victim = net.endpoint_routers()[0];
        let mut fs = d2net_topo::FaultSet::new();
        fs.fail_router(victim);
        let degraded = net.degrade(&fs);
        let policy = RoutePolicy::repair(&degraded, Algorithm::Minimal);
        let stats = run_synthetic(
            &degraded,
            &policy,
            &SyntheticPattern::Uniform,
            0.4,
            60_000,
            10_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        assert!(stats.dropped_packets > 0, "severed traffic is dropped, counted");
        assert_eq!(stats.retried_packets, 0, "no pending recovery, no parking");
        assert!(
            stats.throughput > 0.2,
            "healthy pairs must keep most of the offered load, got {}",
            stats.throughput
        );
    }

    #[test]
    fn rejected_config_sweep_returns_stubs_and_notice_serial_and_parallel() {
        // An undersized buffer cannot hold a single packet per VC; both
        // sweep harnesses must surface that as a notice plus stub points
        // (identical shape), not a process abort.
        let net = two_routers();
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let cfg = SimConfig {
            buffer_bytes: 10,
            ..SimConfig::default()
        };
        let loads = [0.2, 0.4];
        let serial = load_sweep_collect(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &loads,
            30_000,
            6_000,
            cfg,
        );
        assert_eq!(serial.notices.len(), 1);
        assert!(
            serial.notices[0].message.contains("rejected"),
            "{}",
            serial.notices[0].message
        );
        assert!(serial
            .points
            .iter()
            .all(|p| p.stats.deadlocked && p.stats.delivered_packets == 0));
        let parallel = par_load_sweep_collect(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &loads,
            30_000,
            6_000,
            cfg,
            2,
        );
        assert_eq!(serial, parallel, "rejection shape must match serial");
    }
}
