//! Supervised sweeps: a fault-tolerant harness over the parallel sweep
//! pool.
//!
//! The plain sweeps ([`crate::sweep`], [`crate::par`]) already isolate a
//! panicking point into a coded stub; this module adds the *supervisor*
//! around them: deterministic seeded **retries** for points that fail
//! (panic or budget exhaustion), a seeded **chaos registry** that
//! injects panics and stalls inside the engine so the supervisor is
//! itself testable, per-point **completion hooks** (the durable journal
//! in `d2net-core` appends from them), **resume** from previously
//! completed points, and a cooperative **stop** signal for graceful
//! drains (the batch service's SIGTERM path).
//!
//! # Determinism contract
//!
//! With chaos disabled and no budget configured, a supervised sweep is
//! `==` to [`crate::par::par_load_sweep_collect`] (and therefore to the
//! serial sweep) — points, notices, everything. Every point retries
//! from the *same* index-derived seed, so a point that succeeds on a
//! retry is byte-identical to one that never failed; chaos decisions
//! are a pure function of `(chaos seed, point seed, attempt)`, so a
//! chaos run is reproducible end to end.

use crate::config::{ChaosKind, EngineChaos, SimConfig};
use crate::stats::SyntheticStats;
use crate::sweep::{point_seed, PointRunner, SweepNotice, SweepOutcome, SweepPoint};
use d2net_routing::RoutePolicy;
use d2net_topo::Network;
use d2net_traffic::SyntheticPattern;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64-style mix of three words — the one hash behind chaos
/// decisions and backoff jitter, so both are pure functions of their
/// inputs.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fault-injection registry: seeded, deterministic probabilities of
/// an injected panic or stall per `(point, attempt)`. Parsed from the
/// `D2NET_CHAOS` environment variable (`panic=0.05,stall=0.02,seed=7`)
/// or built directly in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability an attempt panics mid-run.
    pub panic_p: f64,
    /// Probability an attempt stalls (stops making event progress until
    /// its wall budget trips — see [`crate::config::ChaosKind::Stall`]).
    pub stall_p: f64,
    /// Registry seed; decisions are pure in `(seed, point seed, attempt)`.
    pub seed: u64,
}

impl ChaosConfig {
    /// Parses the `D2NET_CHAOS` grammar: comma-separated `key=value`
    /// pairs with keys `panic`, `stall` (probabilities in `[0, 1]`) and
    /// `seed` (u64). Unmentioned keys default to zero.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut out = ChaosConfig {
            panic_p: 0.0,
            stall_p: 0.0,
            seed: 0,
        };
        for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            match key.trim() {
                "panic" | "stall" => {
                    let p: f64 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("'{val}' is not a probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} outside [0, 1]"));
                    }
                    if key.trim() == "panic" {
                        out.panic_p = p;
                    } else {
                        out.stall_p = p;
                    }
                }
                "seed" => {
                    out.seed = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("'{val}' is not a u64 seed"))?;
                }
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        Ok(out)
    }

    /// Reads `D2NET_CHAOS`. Unset (or set to a registry with zero
    /// probabilities) means no chaos; an unparsable value emits one
    /// coded `ENV_INVALID` WARN and disables chaos rather than guessing.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("D2NET_CHAOS").ok()?;
        match Self::parse(&raw) {
            Ok(c) if c.panic_p > 0.0 || c.stall_p > 0.0 => Some(c),
            Ok(_) => None,
            Err(e) => {
                crate::obs::warn_line(
                    "env_invalid",
                    &format!("d2net: WARN ENV_INVALID D2NET_CHAOS='{raw}' ({e}); chaos disabled"),
                );
                None
            }
        }
    }

    /// The registry's verdict for one `(point, attempt)`: `None` (run
    /// clean) or an armed [`EngineChaos`] with a derived fire point.
    /// Pure, so the same sweep under the same registry always fails at
    /// the same points — and a retry (higher `attempt`) re-rolls.
    pub fn decide(&self, pseed: u64, attempt: u32) -> Option<EngineChaos> {
        let r = mix3(self.seed, pseed, attempt as u64);
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        let kind = if u < self.panic_p {
            ChaosKind::Panic
        } else if u < self.panic_p + self.stall_p {
            ChaosKind::Stall
        } else {
            return None;
        };
        let after_events = 50 + mix3(self.seed ^ 0xA5A5, pseed, attempt as u64) % 4_000;
        Some(EngineChaos { kind, after_events })
    }
}

/// Supervisor policy: how many retries a failing point gets and how the
/// deterministic backoff between attempts is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperviseConfig {
    /// Retries per point after the first attempt (so a point runs at
    /// most `1 + max_retries` times).
    pub max_retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps
    /// `base << k` plus a seeded jitter in `[0, base)`.
    pub backoff_base_ms: u64,
    /// Fault-injection registry; `None` runs clean.
    pub chaos: Option<ChaosConfig>,
    /// Worker threads (`0` = auto, same resolution as
    /// [`crate::par::resolve_threads`]).
    pub threads: usize,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            max_retries: 2,
            backoff_base_ms: 5,
            chaos: None,
            threads: 0,
        }
    }
}

/// Deterministic backoff for retry `attempt` of the point seeded
/// `pseed`: exponential in the attempt with a seeded jitter, no global
/// RNG — two runs of the same sweep sleep identically.
pub fn backoff_ms(cfg: &SuperviseConfig, pseed: u64, attempt: u32) -> u64 {
    let base = cfg.backoff_base_ms.max(1);
    (base << attempt.min(6)) + mix3(0xB0FF, pseed, attempt as u64) % base
}

/// Per-category point counts for the run's `"supervision"` report
/// section. `completed` counts points simulated to a real result this
/// run (wedges included — a wedge is a result); the other counters are
/// the exceptional paths. Counters need not sum to the point count:
/// early-abort stubs are in no category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisionSummary {
    pub completed: usize,
    /// Points that succeeded only after at least one retry.
    pub retried: usize,
    /// Points whose final outcome (after retries) was budget exhaustion.
    pub exhausted: usize,
    /// Points whose final outcome (after retries) was an isolated panic.
    pub panicked: usize,
    /// Points prefilled from a resume journal instead of simulated.
    pub skipped_by_resume: usize,
    /// Points never started because the stop signal fired first.
    pub not_run: usize,
}

impl SupervisionSummary {
    /// True when the run had nothing to report beyond plain completions
    /// — the condition under which the manifest omits the section
    /// entirely, keeping supervised output byte-identical to
    /// unsupervised output.
    pub fn is_trivial(&self) -> bool {
        self.retried == 0
            && self.exhausted == 0
            && self.panicked == 0
            && self.skipped_by_resume == 0
            && self.not_run == 0
    }
}

/// A supervised sweep's outcome plus its supervision accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedSweep {
    pub outcome: SweepOutcome,
    pub summary: SupervisionSummary,
}

/// A completion-hook borrow: `(point index, its stats)`, callable from
/// worker threads.
pub type OnPointHook<'h> = &'h (dyn Fn(usize, &SyntheticStats) + Sync);

/// Caller hooks threaded through a supervised sweep. All default to
/// inert; every field is optional so plain callers pass
/// `SuperviseHooks::default()`.
#[derive(Default)]
pub struct SuperviseHooks<'h> {
    /// Resume prefill: `Some(stats)` at index `i` replays a previously
    /// journaled result for point `i` instead of simulating it. Length
    /// must equal the load grid's when present.
    pub prefilled: Option<&'h [Option<SyntheticStats>]>,
    /// Cooperative stop: polled before each point is claimed. Once it
    /// returns true, no new points start; in-flight points finish.
    pub stop: Option<&'h (dyn Fn() -> bool + Sync)>,
    /// Completion hook, called from worker threads for every point that
    /// reached a real simulated result this run (the journal's append
    /// point). Not called for resumed, exhausted, panicked, or stubbed
    /// points.
    pub on_point: Option<OnPointHook<'h>>,
}

/// How one supervised slot ended — drives notices and accounting in the
/// final pass.
enum SlotFate {
    /// Simulated to a real result this run, after `retries` retries.
    Fresh { retries: u32 },
    /// Prefilled from the resume journal.
    Resumed,
    /// Final outcome was budget exhaustion (stats are the last
    /// attempt's partial measurements).
    Exhausted,
    /// Final outcome was an isolated panic (stats are a panicked stub).
    Panicked { msg: String },
}

/// [`crate::par::par_load_sweep_collect`] under supervision: panics
/// isolated, budgets enforced, failing points retried with seeded
/// backoff, and the outcome annotated with a [`SupervisionSummary`].
#[allow(clippy::too_many_arguments)]
pub fn supervised_load_sweep_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    sup: &SuperviseConfig,
) -> SupervisedSweep {
    supervised_load_sweep_hooked(
        net,
        policy,
        pattern,
        loads,
        duration_ns,
        warmup_ns,
        cfg,
        sup,
        &SuperviseHooks::default(),
    )
}

/// The full supervised sweep: [`supervised_load_sweep_collect`] plus
/// resume prefill, a cooperative stop signal, and a per-point
/// completion hook (see [`SuperviseHooks`]).
#[allow(clippy::too_many_arguments)]
pub fn supervised_load_sweep_hooked(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    sup: &SuperviseConfig,
    hooks: &SuperviseHooks<'_>,
) -> SupervisedSweep {
    let n = loads.len();
    if let Some(pre) = hooks.prefilled {
        assert_eq!(pre.len(), n, "prefill must cover every point");
    }
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => {
            return SupervisedSweep {
                outcome: crate::sweep::rejected_outcome(loads, e),
                summary: SupervisionSummary::default(),
            }
        }
    };
    if let Err(e) = PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        return SupervisedSweep {
            outcome: crate::sweep::rejected_outcome(loads, e),
            summary: SupervisionSummary::default(),
        };
    }
    crate::obs::sweep_started(n);
    let shards = crate::shard::plan_shards(net, policy, &cfg);
    let threads = (crate::par::resolve_threads(sup.threads) / shards)
        .max(1)
        .min(n.max(1));
    type Slot = Option<(SyntheticStats, SlotFate)>;
    let results: Vec<Mutex<Slot>> = (0..n).map(|_| Mutex::new(None)).collect();
    let watermark = AtomicUsize::new(usize::MAX);
    // Replay the prefill before any worker starts: resumed wedges arm
    // the watermark exactly like freshly simulated ones.
    if let Some(pre) = hooks.prefilled {
        for (idx, slot) in pre.iter().enumerate() {
            if let Some(stats) = slot {
                if stats.deadlocked {
                    watermark.fetch_min(idx, Ordering::Relaxed);
                }
                *results[idx].lock().unwrap() = Some((stats.clone(), SlotFate::Resumed));
            }
        }
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut runner =
                    PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns)
                        .expect("validated before spawning workers");
                loop {
                    if hooks.stop.is_some_and(|stop| stop()) {
                        break;
                    }
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    if results[idx].lock().unwrap().is_some() {
                        continue; // prefilled by the resume journal
                    }
                    if idx > watermark.load(Ordering::Relaxed) {
                        continue; // will be stubbed by the final pass
                    }
                    let load = loads[idx];
                    let pseed = point_seed(cfg.seed, idx);
                    let (stats, fate) = run_supervised_point(
                        &mut runner,
                        idx,
                        load,
                        pseed,
                        sup,
                    );
                    if stats.deadlocked && matches!(fate, SlotFate::Fresh { .. }) {
                        watermark.fetch_min(idx, Ordering::Relaxed);
                    }
                    if let (Some(hook), SlotFate::Fresh { .. }) = (hooks.on_point, &fate) {
                        hook(idx, &stats);
                    }
                    *results[idx].lock().unwrap() = Some((stats, fate));
                }
            });
        }
    });
    // Minimum genuinely wedged index (fresh or resumed) — identical to
    // the serial sweep's first-wedge index, as in `crate::par`.
    let mut first_wedge: Option<usize> = None;
    for (idx, slot) in results.iter().enumerate() {
        if let Some((stats, fate)) = slot.lock().unwrap().as_ref() {
            if stats.deadlocked && !matches!(fate, SlotFate::Panicked { .. }) {
                first_wedge = Some(idx);
                break;
            }
        }
    }
    let mut points = Vec::with_capacity(n);
    let mut notices = Vec::new();
    let mut summary = SupervisionSummary::default();
    let mut stub_count: u64 = 0;
    for (idx, slot) in results.into_iter().enumerate() {
        let load = loads[idx];
        let stubbed = first_wedge.is_some_and(|w| idx > w);
        let point = match (stubbed, slot.into_inner().unwrap()) {
            (false, Some((stats, fate))) => {
                match &fate {
                    SlotFate::Fresh { retries } => {
                        summary.completed += 1;
                        if *retries > 0 {
                            summary.retried += 1;
                        }
                    }
                    SlotFate::Resumed => summary.skipped_by_resume += 1,
                    SlotFate::Exhausted => {
                        summary.exhausted += 1;
                        notices.push(SweepNotice::new(
                            "exhausted",
                            idx,
                            load,
                            format!(
                                "run budget exhausted at offered load {load:.3}; \
                                 partial measurements kept"
                            ),
                        ));
                        crate::obs::notice(notices.last().unwrap());
                    }
                    SlotFate::Panicked { msg } => {
                        summary.panicked += 1;
                        notices.push(SweepNotice::new(
                            "panicked",
                            idx,
                            load,
                            format!(
                                "point at offered load {load:.3} panicked and was stubbed: {msg}"
                            ),
                        ));
                        crate::obs::notice(notices.last().unwrap());
                    }
                }
                if first_wedge == Some(idx) {
                    notices.push(SweepNotice::new(
                        "wedged",
                        idx,
                        load,
                        format!(
                            "network wedged at offered load {load:.3}; \
                             marking remaining loads deadlocked without simulating them"
                        ),
                    ));
                    crate::obs::notice(notices.last().unwrap());
                }
                SweepPoint {
                    load,
                    stats,
                    telemetry: None,
                }
            }
            (stubbed, _) => {
                if !stubbed {
                    // Never claimed: the stop signal fired first. The
                    // stub keeps the curve one-entry-per-load; resume
                    // re-simulates it.
                    if summary.not_run == 0 {
                        notices.push(SweepNotice::new(
                            "deadline",
                            idx,
                            load,
                            format!(
                                "sweep stopped before offered load {load:.3}; \
                                 remaining points left for resume"
                            ),
                        ));
                        crate::obs::notice(notices.last().unwrap());
                    }
                    summary.not_run += 1;
                } else {
                    stub_count += 1;
                }
                SweepPoint {
                    load,
                    stats: SyntheticStats::deadlocked_stub(load),
                    telemetry: None,
                }
            }
        };
        points.push(point);
    }
    crate::obs::sweep_finished(&crate::obs::SweepAccounting {
        completed: summary.completed as u64,
        retried: summary.retried as u64,
        panicked: summary.panicked as u64,
        exhausted: summary.exhausted as u64,
        resumed: summary.skipped_by_resume as u64,
        not_run: summary.not_run as u64,
        stubbed: stub_count,
    });
    SupervisedSweep {
        outcome: SweepOutcome { points, notices },
        summary,
    }
}

/// One point's retry loop: decide chaos for the attempt, run isolated,
/// retry panics and exhaustions with deterministic backoff, give up
/// into a coded fate after `max_retries`.
fn run_supervised_point(
    runner: &mut PointRunner<'_>,
    idx: usize,
    load: f64,
    pseed: u64,
    sup: &SuperviseConfig,
) -> (SyntheticStats, SlotFate) {
    let mut attempt: u32 = 0;
    loop {
        let chaos = sup.chaos.as_ref().and_then(|c| c.decide(pseed, attempt));
        if let Some(c) = &chaos {
            let kind = match c.kind {
                ChaosKind::Panic => "panic",
                ChaosKind::Stall => "stall",
            };
            crate::obs::chaos_armed(idx, attempt, kind, c.after_events);
        }
        runner.set_chaos(chaos);
        let result = runner.run_point_isolated(idx, load, None, None, None);
        runner.set_chaos(None);
        let reason = match result {
            Ok((stats, ..)) if !stats.exhausted => {
                return (stats, SlotFate::Fresh { retries: attempt });
            }
            Ok((stats, ..)) => {
                if attempt >= sup.max_retries {
                    return (stats, SlotFate::Exhausted);
                }
                "exhausted"
            }
            Err(msg) => {
                if attempt >= sup.max_retries {
                    return (SyntheticStats::panicked_stub(load), SlotFate::Panicked { msg });
                }
                "panic"
            }
        };
        crate::obs::retry(idx, load, attempt + 1, reason);
        std::thread::sleep(std::time::Duration::from_millis(backoff_ms(
            sup, pseed, attempt,
        )));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunBudget;
    use crate::par::par_load_sweep_collect;
    use crate::sweep::load_grid;
    use d2net_routing::Algorithm;
    use d2net_topo::{slim_fly, SlimFlyP};

    fn fixture() -> (Network, RoutePolicy, SyntheticPattern) {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        (net, policy, SyntheticPattern::Uniform)
    }

    #[test]
    fn chaos_parse_grammar() {
        let c = ChaosConfig::parse("panic=0.05,stall=0.02,seed=7").unwrap();
        assert_eq!(c.panic_p, 0.05);
        assert_eq!(c.stall_p, 0.02);
        assert_eq!(c.seed, 7);
        assert_eq!(
            ChaosConfig::parse("panic=0.5").unwrap(),
            ChaosConfig {
                panic_p: 0.5,
                stall_p: 0.0,
                seed: 0
            }
        );
        assert!(ChaosConfig::parse("panic=2.0").is_err());
        assert!(ChaosConfig::parse("frob=1").is_err());
        assert!(ChaosConfig::parse("panic").is_err());
    }

    #[test]
    fn chaos_decisions_are_pure_and_roughly_calibrated() {
        let c = ChaosConfig {
            panic_p: 0.2,
            stall_p: 0.1,
            seed: 42,
        };
        let mut fired = 0;
        for i in 0..1_000u64 {
            let d0 = c.decide(i, 0);
            assert_eq!(d0, c.decide(i, 0), "decision must be pure");
            if d0.is_some() {
                fired += 1;
            }
        }
        // 30 % nominal; allow a generous band.
        assert!((200..=400).contains(&fired), "fired {fired}/1000");
        // Attempts re-roll: some point that fails at attempt 0 must run
        // clean at attempt 1.
        assert!(
            (0..1_000u64).any(|i| c.decide(i, 0).is_some() && c.decide(i, 1).is_none()),
            "retries must be able to clear chaos"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let sup = SuperviseConfig::default();
        let a = backoff_ms(&sup, 123, 0);
        assert_eq!(a, backoff_ms(&sup, 123, 0));
        assert!(backoff_ms(&sup, 123, 3) >= backoff_ms(&sup, 123, 0));
    }

    #[test]
    fn clean_supervised_sweep_equals_parallel_sweep() {
        let (net, policy, pattern) = fixture();
        let loads = load_grid(4);
        let cfg = SimConfig::default();
        let plain = par_load_sweep_collect(&net, &policy, &pattern, &loads, 6_000, 1_000, cfg, 2);
        let sup = supervised_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig {
                threads: 2,
                ..SuperviseConfig::default()
            },
        );
        assert_eq!(sup.outcome, plain, "supervision must be invisible when clean");
        assert!(sup.summary.is_trivial());
        assert_eq!(sup.summary.completed, loads.len());
    }

    #[test]
    fn chaos_panics_are_retried_to_byte_identical_results() {
        let (net, policy, pattern) = fixture();
        let loads = load_grid(4);
        let cfg = SimConfig::default();
        let clean = supervised_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig::default(),
        );
        // Heavy panic chaos, plenty of retries: every point must still
        // come back identical to the clean run because retries reuse the
        // point seed.
        let chaotic = supervised_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig {
                max_retries: 8,
                backoff_base_ms: 1,
                chaos: Some(ChaosConfig {
                    panic_p: 0.5,
                    stall_p: 0.0,
                    seed: 3,
                }),
                threads: 2,
            },
        );
        assert_eq!(chaotic.outcome, clean.outcome);
        assert!(chaotic.summary.retried > 0, "chaos at 50 % must have fired");
        assert_eq!(chaotic.summary.panicked, 0);
    }

    #[test]
    fn exhausted_retries_give_up_into_coded_notice() {
        let (net, policy, pattern) = fixture();
        let loads = [0.3, 0.6];
        // A budget so small every point exhausts, with no chaos: the
        // supervisor must retry, give up, and keep the partial stats.
        let cfg = SimConfig {
            budget: RunBudget::events(200),
            ..SimConfig::default()
        };
        let sup = supervised_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig {
                max_retries: 1,
                backoff_base_ms: 1,
                ..SuperviseConfig::default()
            },
        );
        assert_eq!(sup.summary.exhausted, 2);
        assert_eq!(sup.summary.completed, 0);
        assert!(sup.outcome.points.iter().all(|p| p.stats.exhausted));
        assert!(!sup.outcome.points.iter().any(|p| p.stats.deadlocked));
        assert_eq!(sup.outcome.notices.len(), 2);
        assert!(sup.outcome.notices.iter().all(|n| n.code == "exhausted"));
    }

    #[test]
    fn resume_prefill_skips_points_and_reproduces_the_full_run() {
        let (net, policy, pattern) = fixture();
        let loads = load_grid(4);
        let cfg = SimConfig::default();
        let full = supervised_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig::default(),
        );
        // Prefill the first half from the "journal" and resume.
        let prefilled: Vec<Option<SyntheticStats>> = full
            .outcome
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| (i < 2).then(|| p.stats.clone()))
            .collect();
        let resumed_points = Mutex::new(Vec::new());
        let on_point = |idx: usize, _: &SyntheticStats| {
            resumed_points.lock().unwrap().push(idx);
        };
        let resumed = supervised_load_sweep_hooked(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig::default(),
            &SuperviseHooks {
                prefilled: Some(&prefilled),
                stop: None,
                on_point: Some(&on_point),
            },
        );
        assert_eq!(resumed.outcome, full.outcome, "resume must be invisible");
        assert_eq!(resumed.summary.skipped_by_resume, 2);
        assert_eq!(resumed.summary.completed, 2);
        let mut sim_idxs = resumed_points.into_inner().unwrap();
        sim_idxs.sort_unstable();
        assert_eq!(sim_idxs, vec![2, 3], "only the missing points re-simulate");
    }

    #[test]
    fn stop_signal_drains_gracefully_with_deadline_notice() {
        let (net, policy, pattern) = fixture();
        let loads = load_grid(4);
        let cfg = SimConfig::default();
        let stop = || true; // stop before anything starts
        let out = supervised_load_sweep_hooked(
            &net,
            &policy,
            &pattern,
            &loads,
            6_000,
            1_000,
            cfg,
            &SuperviseConfig {
                threads: 2,
                ..SuperviseConfig::default()
            },
            &SuperviseHooks {
                prefilled: None,
                stop: Some(&stop),
                on_point: None,
            },
        );
        assert_eq!(out.summary.not_run, loads.len());
        assert_eq!(out.summary.completed, 0);
        assert_eq!(out.outcome.notices.len(), 1);
        assert_eq!(out.outcome.notices[0].code, "deadline");
        assert_eq!(out.outcome.points.len(), loads.len());
    }
}
