//! Simulation parameters.
//!
//! Defaults reproduce the paper's setup (§4.1): virtual-channel
//! input-output-buffered switches with 100 KB of buffer per port per
//! direction, 100 ns switch traversal, 100 Gb/s links with 50 ns latency,
//! credit-based flow control, and 256-byte packets.
//!
//! Time is measured in integer **picoseconds**: one 256 B packet at
//! 100 Gb/s serializes in exactly 20 480 ps, so no floating-point time
//! drift can accumulate.

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;

/// Packet inter-arrival process for synthetic sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arrival {
    /// Constant spacing at the configured load (the paper's "generated
    /// continuously at link rate" methodology).
    #[default]
    Deterministic,
    /// Exponential inter-arrivals with the same mean (Poisson process);
    /// burstier, raising queueing delay at equal load.
    Exponential,
}

/// Whether (and how strictly) the static preflight verifier runs before
/// a simulation is constructed. See `d2net_verify` for what is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preflight {
    /// No static verification (the historical behavior, and the default:
    /// the exhaustive route-space pass is meant for small instances).
    #[default]
    Off,
    /// Verify; on a rejected config print the diagnostic report to stderr
    /// and simulate anyway (the wedge will demonstrate the prediction).
    Warn,
    /// Verify; on a rejected config refuse to simulate, panicking with
    /// the rendered diagnostic report.
    Enforce,
}

/// Which priority-queue structure drives the engine's event loop. Both
/// produce byte-identical schedules (the `(time, seq)` order is total);
/// the calendar queue is the fast path, the heap the reference
/// implementation retained for cross-check tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// Hierarchical calendar/bucket queue sized from the config's
    /// serialization/link/switch delays (see `sim::equeue`).
    #[default]
    Calendar,
    /// Plain `BinaryHeap<Reverse<(time, seq, Ev)>>` — the seed
    /// implementation.
    Heap,
}

/// Per-point run budget, enforced inside the engine's event loop. A
/// field of `0` means unlimited; the default is fully unlimited, so a
/// budget-free config simulates exactly as before. When a limit trips,
/// the engine stops popping events and reports the run as **exhausted**
/// ([`crate::SyntheticStats::exhausted`]) with the measurements
/// accumulated so far — a structured abort instead of a hang.
///
/// The event-count limit is deterministic (the schedule is a pure
/// function of the config, so the abort point is too); the wall-clock
/// limit is inherently not, and is meant as a supervisor's last line of
/// defense against runs that stall without making event progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Maximum events popped per run (`0` = unlimited). Deterministic.
    pub max_events: u64,
    /// Maximum wall-clock milliseconds per run (`0` = unlimited).
    /// Checked every 1024 pops; not deterministic across machines.
    pub max_wall_ms: u64,
}

impl RunBudget {
    /// True when no limit is set — the engine loop skips all budget
    /// bookkeeping in that case.
    pub fn is_unlimited(&self) -> bool {
        self.max_events == 0 && self.max_wall_ms == 0
    }

    /// An event-count-only budget.
    pub fn events(max_events: u64) -> Self {
        RunBudget {
            max_events,
            max_wall_ms: 0,
        }
    }

    /// A wall-clock-only budget.
    pub fn wall_ms(max_wall_ms: u64) -> Self {
        RunBudget {
            max_events: 0,
            max_wall_ms,
        }
    }
}

/// What an injected chaos fault does when it fires (see
/// [`crate::supervise::ChaosConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// `panic!` inside the event loop — exercises `catch_unwind`
    /// isolation in the sweep harnesses.
    Panic,
    /// Stop making event progress (sleep) until the wall-clock budget
    /// trips (or a 2 s failsafe, so an unbudgeted run cannot hang
    /// forever) — exercises the budget abort path.
    Stall,
}

/// One armed chaos fault: fire `kind` after `after_events` event pops.
/// Decided per (point, attempt) by the supervisor
/// ([`crate::supervise::ChaosConfig::decide`]); `SimConfig::chaos` is
/// `None` everywhere outside supervised chaos runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineChaos {
    pub kind: ChaosKind,
    pub after_events: u64,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Link bandwidth in Gb/s (default 100).
    pub link_bandwidth_gbps: f64,
    /// Link propagation latency in ns (default 50).
    pub link_latency_ns: u64,
    /// Switch traversal latency in ns (default 100).
    pub switch_latency_ns: u64,
    /// Buffer space per port per direction in bytes (default 100 KB).
    pub buffer_bytes: u64,
    /// Packet size in bytes (default 256).
    pub packet_bytes: u32,
    /// RNG seed for all stochastic components (traffic, route sampling).
    pub seed: u64,
    /// Synthetic-source inter-arrival process.
    pub arrival: Arrival,
    /// Static verification before simulating (default [`Preflight::Off`]).
    pub preflight: Preflight,
    /// Event-queue structure for the engine's hot loop (default
    /// [`EventQueueKind::Calendar`]; results are identical either way).
    pub event_queue: EventQueueKind,
    /// Intra-run shard count for [`crate::run_synthetic_sharded`] and the
    /// sharded sweeps: routers are partitioned into this many per-thread
    /// engine shards running in conservative time windows. `0` (the
    /// default) means auto — the `D2NET_SHARDS` environment variable if
    /// set, otherwise a size-based heuristic; `1` forces serial. Results
    /// are byte-identical for every value (see `sim::shard`).
    pub shards: u32,
    /// Per-point run budget (default unlimited — see [`RunBudget`]).
    /// Not part of a point's content hash: a tripped budget yields an
    /// exhausted partial result, never a journaled completed point.
    pub budget: RunBudget,
    /// Armed chaos fault for this run (default `None`). Set only by the
    /// supervisor's chaos registry; never by ordinary configs.
    pub chaos: Option<EngineChaos>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_bandwidth_gbps: 100.0,
            link_latency_ns: 50,
            switch_latency_ns: 100,
            buffer_bytes: 100_000,
            packet_bytes: 256,
            seed: 0xD2_4E7,
            arrival: Arrival::Deterministic,
            preflight: Preflight::Off,
            event_queue: EventQueueKind::Calendar,
            shards: 0,
            budget: RunBudget::default(),
            chaos: None,
        }
    }
}

impl SimConfig {
    /// Picoseconds needed to serialize one byte at link rate
    /// (80 ps at 100 Gb/s).
    pub fn ps_per_byte(&self) -> u64 {
        d2net_verify::invariant::exact_ps_per_byte(self.link_bandwidth_gbps)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The subset of this config the static preflight verifier consults.
    pub fn verify_params(&self) -> d2net_verify::VerifyParams {
        d2net_verify::VerifyParams {
            buffer_bytes: self.buffer_bytes,
            packet_bytes: self.packet_bytes,
            link_bandwidth_gbps: self.link_bandwidth_gbps,
            ..d2net_verify::VerifyParams::default()
        }
    }

    /// Serialization time of `bytes` in ps.
    #[inline]
    pub fn ser_ps(&self, bytes: u32) -> u64 {
        bytes as u64 * self.ps_per_byte()
    }

    /// Link latency in ps.
    #[inline]
    pub fn link_ps(&self) -> u64 {
        self.link_latency_ns * PS_PER_NS
    }

    /// Switch traversal latency in ps.
    #[inline]
    pub fn switch_ps(&self) -> u64 {
        self.switch_latency_ns * PS_PER_NS
    }

    /// Mean packet inter-arrival time (ps) at a node injecting at
    /// `load` ∈ (0, 1] of link bandwidth.
    pub fn interval_ps(&self, load: f64) -> u64 {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1], got {load}");
        (self.ser_ps(self.packet_bytes) as f64 / load).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.ps_per_byte(), 80);
        assert_eq!(c.ser_ps(256), 20_480);
        assert_eq!(c.link_ps(), 50_000);
        assert_eq!(c.switch_ps(), 100_000);
        assert_eq!(c.buffer_bytes, 100_000);
    }

    #[test]
    fn interval_scales_inversely_with_load() {
        let c = SimConfig::default();
        assert_eq!(c.interval_ps(1.0), 20_480);
        assert_eq!(c.interval_ps(0.5), 40_960);
        assert_eq!(c.interval_ps(0.1), 204_800);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn rejects_zero_load() {
        SimConfig::default().interval_ps(0.0);
    }

    #[test]
    #[should_panic(expected = "divide 8000")]
    fn rejects_inexact_bandwidth() {
        SimConfig {
            link_bandwidth_gbps: 3.0, // 2666.67 ps/byte
            ..Default::default()
        }
        .ps_per_byte();
    }
}
