//! Strict parsing for the crate's environment overrides.
//!
//! `D2NET_THREADS` and `D2NET_SHARDS` used to fall back to auto
//! *silently* when set to garbage — a typo like `D2NET_THREADS=all`
//! would quietly change the machine's parallelism without a trace. Both
//! now go through [`env_positive`], which emits one coded WARN
//! diagnostic per invalid read and then falls back, so the fallback is
//! visible in logs and CI transcripts.

/// Parses a positive-integer environment value. Pure (no environment
/// access, no I/O) so the diagnostic wording and the accepted grammar
/// are unit-testable. `Err` carries the coded WARN line verbatim.
pub fn parse_positive(name: &str, raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "d2net: WARN ENV_INVALID {name}='{raw}' is not a positive integer; \
             falling back to auto"
        )),
    }
}

/// Reads environment variable `name` as a positive integer. Returns
/// `None` when unset; when set but invalid, routes the coded
/// `ENV_INVALID` WARN through [`crate::obs::warn_line`] — an
/// `env_invalid` event when observability is enabled, the same stderr
/// line as before otherwise — and returns `None` (auto fallback).
pub fn env_positive(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match parse_positive(name, &raw) {
        Ok(n) => Some(n),
        Err(warn) => {
            crate::obs::warn_line("env_invalid", &warn);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers_with_whitespace() {
        assert_eq!(parse_positive("D2NET_THREADS", "4"), Ok(4));
        assert_eq!(parse_positive("D2NET_SHARDS", " 16 "), Ok(16));
        assert_eq!(parse_positive("D2NET_THREADS", "1"), Ok(1));
    }

    #[test]
    fn rejects_zero_negative_and_garbage_with_coded_warn() {
        for raw in ["0", "-3", "all", "4.5", "", "0x10", "8 cores"] {
            let err = parse_positive("D2NET_THREADS", raw).unwrap_err();
            assert!(err.contains("WARN ENV_INVALID"), "missing code: {err}");
            assert!(err.contains("D2NET_THREADS"), "missing var name: {err}");
            assert!(err.contains(raw), "missing offending value: {err}");
            assert!(err.contains("falling back to auto"), "missing action: {err}");
        }
    }

    #[test]
    fn unset_variable_reads_as_none() {
        assert_eq!(env_positive("D2NET_TEST_UNSET_VAR_XYZ"), None);
    }
}
