//! Runtime observability for the simulator.
//!
//! A probe is attached to an [`crate::Engine`] before the run and records,
//! at a fixed sampling interval:
//!
//! - per-link utilization (bytes serialized per output port per window);
//! - per-VC buffer occupancy, input and output side, as a fraction of the
//!   per-VC capacity;
//! - aggregate injection/ejection rates and the indirect-route fraction;
//!
//! plus a bounded ring buffer of recent noteworthy events per router and,
//! when the run wedges, a deadlock forensics report: the cycle of blocked
//! (port, VC) pairs with their occupancies, head-packet routes and missing
//! credits.
//!
//! The probe is **zero-overhead when disabled**: the engine stores an
//! `Option<Telemetry>` and the event loop pays exactly one branch per
//! event when it is `None`. When enabled, all series storage is
//! preallocated at attach time and samples are taken lazily when event
//! time crosses a window boundary — the event heap never carries probe
//! events, so the simulated schedule is identical with and without the
//! probe.

use std::collections::VecDeque;

/// Probe configuration. All knobs have conservative defaults; the
/// defaults sample every microsecond and bound total series memory via
/// [`ProbeConfig::max_samples`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// Window length between samples in ns (default 1000 = 1 µs).
    pub sample_interval_ns: u64,
    /// Hard cap on recorded samples; once reached, counters keep
    /// accumulating but no further series rows are stored (default 1024).
    pub max_samples: usize,
    /// Events retained per router in the rolling ring (default 32).
    pub ring_capacity: usize,
    /// Consecutive samples whose ejection rate must agree for the run to
    /// count as converged (default 8).
    pub convergence_window: usize,
    /// Relative spread (max-min over mean) tolerated inside the
    /// convergence window (default 0.05).
    pub convergence_tolerance: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            sample_interval_ns: 1_000,
            max_samples: 1024,
            ring_capacity: 32,
            convergence_window: 8,
            convergence_tolerance: 0.05,
        }
    }
}

/// One entry of a router's bounded event ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEvent {
    /// Simulated time of the event in ps.
    pub t_ps: u64,
    pub kind: RingEventKind,
}

/// The event classes retained in router rings: injections, ejections and
/// transitions into a blocked input (port, VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingEventKind {
    /// A node attached to this router injected a packet.
    Inject { node: u32, dst: u32, indirect: bool },
    /// A packet was delivered to a node attached to this router.
    Eject { node: u32, src: u32, delay_ps: u64 },
    /// An input (port, VC) became blocked on a full output buffer.
    Blocked {
        in_port: u32,
        in_vc: u8,
        out_port: u32,
        out_vc: u8,
    },
    /// A scheduled fault took this router's link to `peer_router` down;
    /// `dropped` packets were flushed from the dead output's buffers.
    LinkDown { peer_router: u32, dropped: u32 },
}

/// Which side of a switch a blocked buffer sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitSide {
    /// Input FIFO waiting for space in an output buffer.
    Input,
    /// Output buffer waiting for downstream credits.
    Output,
}

/// One (port, VC) buffer participating in a deadlock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitPoint {
    pub router: u32,
    pub port: u32,
    pub vc: u8,
    pub side: WaitSide,
    /// Bytes currently occupying this buffer.
    pub occupancy_bytes: u64,
    /// Packets queued in this buffer.
    pub queue_len: usize,
    /// Head packet's source and destination nodes.
    pub head_src: u32,
    pub head_dst: u32,
    /// Head packet's position along its route (router-sequence index).
    pub head_hop: u8,
    /// The head packet's full planned router sequence.
    pub head_route: Vec<u32>,
    /// For output-side points: credit bytes short of the head packet's
    /// size. Zero for input-side points.
    pub missing_credits: u64,
}

/// Forensics for a wedged run: the first wait-for cycle found over
/// blocked buffers. Each element waits on the next (wrapping around).
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    /// The cycle of mutually waiting buffers, in wait-for order.
    pub cycle: Vec<WaitPoint>,
    /// Packets stranded in-network at wedge time (created - delivered).
    pub stranded_packets: u64,
    /// Wedge time in ps.
    pub t_ps: u64,
}

impl DeadlockReport {
    /// True when the wedge shows **no** wait-for cycle: packets are
    /// stranded but nothing is circularly blocked. With faults in play
    /// this is the signature of a partition (traffic committed to
    /// destinations that became unreachable), not of a VC credit
    /// deadlock — the two need different fixes, so forensics keeps them
    /// apart. The cycle is empty exactly in this case.
    pub fn is_partition(&self) -> bool {
        self.cycle.is_empty()
    }

    /// Human-readable rendering of the cycle, one line per wait point.
    pub fn render(&self) -> String {
        if self.is_partition() {
            return format!(
                "WEDGED WITHOUT A WAIT-FOR CYCLE at t={} ns: {} packets stranded \
                 but no buffer waits on another — consistent with a network \
                 partition (in-flight traffic toward unreachable destinations), \
                 not a VC credit deadlock\n",
                self.t_ps / 1_000,
                self.stranded_packets,
            );
        }
        let mut s = format!(
            "DEADLOCK at t={} ns: {} packets stranded; wait-for cycle of {} buffers:\n",
            self.t_ps / 1_000,
            self.stranded_packets,
            self.cycle.len()
        );
        for (i, w) in self.cycle.iter().enumerate() {
            let side = match w.side {
                WaitSide::Input => "in ",
                WaitSide::Output => "out",
            };
            s.push_str(&format!(
                "  [{i}] router {:>3} port {:>3} vc {} {side}: occ {:>6} B, {} queued, head {}->{} hop {}/{} route {:?}",
                w.router,
                w.port,
                w.vc,
                w.occupancy_bytes,
                w.queue_len,
                w.head_src,
                w.head_dst,
                w.head_hop,
                w.head_route.len().saturating_sub(1),
                w.head_route,
            ));
            if w.side == WaitSide::Output {
                s.push_str(&format!(", {} B of credit missing", w.missing_credits));
            }
            s.push_str("  -> waits on next\n");
        }
        s
    }
}

/// Compact per-run digest of a telemetry report — cheap to clone and
/// attach to sweep points.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    pub num_samples: usize,
    pub sample_interval_ns: u64,
    /// Mean utilization over all router-to-router links and samples.
    pub mean_link_utilization: f64,
    /// Peak single-link single-window utilization.
    pub peak_link_utilization: f64,
    /// Peak per-VC buffer occupancy fraction (input or output side).
    pub peak_occupancy: f64,
    /// Indirect fraction of all injected packets.
    pub mean_indirect_fraction: f64,
    /// First time (ns) the ejection rate stabilized, if it did.
    pub converged_at_ns: Option<u64>,
    /// Length of the deadlock cycle (0 when the run did not wedge).
    pub deadlock_cycle_len: usize,
    /// Packets dropped over the whole run (in-flight + injection-side),
    /// mirroring the engine's fault counters.
    pub dropped_packets: u64,
    /// Injection retries the run performed after transient faults.
    pub retried_packets: u64,
    /// Scheduled link-failure events the run observed.
    pub link_down_events: u64,
    /// Packets flushed from dead output buffers across all link failures.
    pub link_down_flushed: u64,
}

/// Full probe output of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    pub config: ProbeConfig,
    /// Samples actually recorded (≤ `config.max_samples`).
    pub num_samples: usize,
    pub num_routers: u32,
    pub num_nodes: u32,
    /// Total ports (network + node) across all routers.
    pub num_ports: u32,
    pub num_vcs: u32,
    /// Router owning each port.
    pub port_owner: Vec<u32>,
    /// True for node (injection/ejection) ports.
    pub port_is_node: Vec<bool>,

    /// Flattened `[sample * num_ports + port]` link utilization per
    /// window, as a fraction of link bandwidth.
    pub link_util: Vec<f32>,
    /// Flattened `[sample * num_ports * num_vcs + pv]` input-buffer
    /// occupancy fraction at each window boundary.
    pub in_occupancy: Vec<f32>,
    /// Same layout, output-buffer side.
    pub out_occupancy: Vec<f32>,
    /// Per-sample aggregate injection rate (fraction of total injection
    /// bandwidth).
    pub injection_rate: Vec<f32>,
    /// Per-sample aggregate ejection rate (same normalization).
    pub ejection_rate: Vec<f32>,
    /// Per-sample fraction of injected packets routed indirectly.
    pub indirect_fraction: Vec<f32>,

    /// Bounded recent-event ring per router, oldest first.
    pub rings: Vec<Vec<RingEvent>>,
    /// Packets injected over the whole run (warm-up included).
    pub total_injected_packets: u64,
    /// Packets delivered over the whole run (warm-up included).
    pub total_ejected_packets: u64,
    /// Deliveries broken down by destination router.
    pub ejected_per_router: Vec<u64>,
    /// Indirect injections over the whole run.
    pub total_indirect: u64,
    /// Packets dropped over the whole run (in-flight + injection-side).
    /// Filled in by the engine when the probe detaches; the probe itself
    /// only observes deliveries and link failures.
    pub total_dropped_packets: u64,
    /// Injection retries performed after transient faults (engine-filled).
    pub total_retried_packets: u64,
    /// Scheduled link-failure events observed via `on_link_down`.
    pub total_link_down_events: u64,
    /// Packets flushed from dead output buffers, summed over failures.
    pub total_link_down_flushed: u64,

    /// First time (ns) the ejection rate stayed inside the convergence
    /// band for a full window, if ever.
    pub converged_at_ns: Option<u64>,
    /// Present iff the run wedged.
    pub deadlock: Option<DeadlockReport>,
}

impl TelemetryReport {
    /// Utilization of `port` during sample window `sample`.
    pub fn link_utilization(&self, sample: usize, port: u32) -> f32 {
        self.link_util[sample * self.num_ports as usize + port as usize]
    }

    /// Input-buffer occupancy fraction of (`port`, `vc`) at the end of
    /// window `sample`.
    pub fn input_occupancy(&self, sample: usize, port: u32, vc: u8) -> f32 {
        let pvs = (self.num_ports * self.num_vcs) as usize;
        self.in_occupancy[sample * pvs + (port * self.num_vcs + vc as u32) as usize]
    }

    /// Output-buffer occupancy fraction of (`port`, `vc`) at the end of
    /// window `sample`.
    pub fn output_occupancy(&self, sample: usize, port: u32, vc: u8) -> f32 {
        let pvs = (self.num_ports * self.num_vcs) as usize;
        self.out_occupancy[sample * pvs + (port * self.num_vcs + vc as u32) as usize]
    }

    /// Condenses the report into a [`TelemetrySummary`].
    pub fn summary(&self) -> TelemetrySummary {
        let mut sum = 0.0f64;
        let mut n = 0u64;
        let mut peak = 0.0f64;
        for s in 0..self.num_samples {
            for port in 0..self.num_ports {
                if self.port_is_node[port as usize] {
                    continue;
                }
                let u = self.link_utilization(s, port) as f64;
                sum += u;
                n += 1;
                peak = peak.max(u);
            }
        }
        let peak_occupancy = self
            .in_occupancy
            .iter()
            .chain(self.out_occupancy.iter())
            .fold(0.0f32, |a, &b| a.max(b)) as f64;
        TelemetrySummary {
            num_samples: self.num_samples,
            sample_interval_ns: self.config.sample_interval_ns,
            mean_link_utilization: if n > 0 { sum / n as f64 } else { 0.0 },
            peak_link_utilization: peak,
            peak_occupancy,
            mean_indirect_fraction: if self.total_injected_packets > 0 {
                self.total_indirect as f64 / self.total_injected_packets as f64
            } else {
                0.0
            },
            converged_at_ns: self.converged_at_ns,
            deadlock_cycle_len: self.deadlock.as_ref().map_or(0, |d| d.cycle.len()),
            dropped_packets: self.total_dropped_packets,
            retried_packets: self.total_retried_packets,
            link_down_events: self.total_link_down_events,
            link_down_flushed: self.total_link_down_flushed,
        }
    }
}

/// Live probe state owned by the engine during a run. Constructed via
/// [`Telemetry::new`] with the engine's port geometry; all series storage
/// is preallocated here, so the event loop never allocates on the probe's
/// behalf.
#[derive(Debug)]
pub struct Telemetry {
    cfg: ProbeConfig,
    num_routers: u32,
    num_nodes: u32,
    num_ports: u32,
    num_vcs: u32,
    port_owner: Vec<u32>,
    port_is_node: Vec<bool>,
    vc_cap: u64,
    /// Link capacity of one sample window in bytes.
    window_bytes: u64,
    sample_interval_ps: u64,

    // Window accumulators, reset at every sample boundary.
    win_sent: Vec<u64>,
    win_injected_pkts: u64,
    win_injected_bytes: u64,
    win_ejected_bytes: u64,
    win_indirect_pkts: u64,

    // Whole-run totals.
    total_injected: u64,
    total_ejected: u64,
    total_indirect: u64,
    ejected_per_router: Vec<u64>,
    total_link_down: u64,
    total_flushed: u64,

    next_sample_ps: u64,
    samples_taken: usize,
    /// Window contributions recorded at `t >= next_sample_ps` before the
    /// enclosing window was flushed. Windows are half-open `[start, end)`:
    /// an event at exactly the boundary belongs to the *later* window, so
    /// it must not be absorbed into the accumulators until the earlier
    /// window has been sampled. The engine flushes before it handles each
    /// event, so this stays empty on the hot path; it only fills when a
    /// caller records ahead of `sample_to` (API use, run-end paths).
    pending: Vec<(u64, PendingSample)>,

    link_util: Vec<f32>,
    in_occupancy: Vec<f32>,
    out_occupancy: Vec<f32>,
    // Per-sample aggregate window counters, kept as raw integers: the
    // f32 rate series are derived in `into_report`. Raw storage makes
    // the sharded merge exact — summing integer window counters and
    // dividing once is the same arithmetic the serial probe performs,
    // whereas summing per-shard f32 quotients would not be.
    raw_inj_pkts: Vec<u64>,
    raw_inj_bytes: Vec<u64>,
    raw_ej_bytes: Vec<u64>,
    raw_indirect_pkts: Vec<u64>,

    rings: Vec<VecDeque<RingEvent>>,
}

/// A deferred window contribution (see [`Telemetry::pending`]-field docs).
#[derive(Debug, Clone, Copy)]
enum PendingSample {
    Inject { bytes: u32, indirect: bool },
    Eject { bytes: u32 },
    Send { port: u32, bytes: u32 },
}

impl Telemetry {
    /// Builds a probe for an engine with the given geometry.
    /// `ps_per_byte` converts window byte counts into utilizations.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: ProbeConfig,
        num_routers: u32,
        num_nodes: u32,
        num_vcs: u32,
        port_owner: Vec<u32>,
        port_is_node: Vec<bool>,
        vc_cap: u64,
        ps_per_byte: u64,
    ) -> Self {
        assert!(cfg.sample_interval_ns > 0, "sample interval must be positive");
        assert!(cfg.convergence_window >= 2, "convergence window must be >= 2");
        let num_ports = port_owner.len() as u32;
        let interval_ps = cfg.sample_interval_ns * 1_000;
        let window_bytes = (interval_ps / ps_per_byte).max(1);
        let pv_total = (num_ports * num_vcs) as usize;
        Telemetry {
            num_routers,
            num_nodes,
            num_ports,
            num_vcs,
            port_owner,
            port_is_node,
            vc_cap,
            window_bytes,
            sample_interval_ps: interval_ps,
            win_sent: vec![0; num_ports as usize],
            win_injected_pkts: 0,
            win_injected_bytes: 0,
            win_ejected_bytes: 0,
            win_indirect_pkts: 0,
            total_injected: 0,
            total_ejected: 0,
            total_indirect: 0,
            ejected_per_router: vec![0; num_routers as usize],
            total_link_down: 0,
            total_flushed: 0,
            next_sample_ps: interval_ps,
            samples_taken: 0,
            pending: Vec::new(),
            link_util: Vec::with_capacity(cfg.max_samples * num_ports as usize),
            in_occupancy: Vec::with_capacity(cfg.max_samples * pv_total),
            out_occupancy: Vec::with_capacity(cfg.max_samples * pv_total),
            raw_inj_pkts: Vec::with_capacity(cfg.max_samples),
            raw_inj_bytes: Vec::with_capacity(cfg.max_samples),
            raw_ej_bytes: Vec::with_capacity(cfg.max_samples),
            raw_indirect_pkts: Vec::with_capacity(cfg.max_samples),
            rings: vec![VecDeque::with_capacity(cfg.ring_capacity); num_routers as usize],
            cfg,
        }
    }

    #[inline]
    fn ring_push(&mut self, router: u32, ev: RingEvent) {
        let ring = &mut self.rings[router as usize];
        if ring.len() == self.cfg.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// True when a contribution at `t_ps` falls past the next window
    /// boundary and must wait for that window to be flushed first
    /// (half-open windows: a boundary event belongs to the later one).
    /// Once the sample cap is hit no further rows are stored, so late
    /// contributions can be absorbed directly instead of queueing.
    #[inline]
    fn defer(&self, t_ps: u64) -> bool {
        t_ps >= self.next_sample_ps && self.samples_taken < self.cfg.max_samples
    }

    /// A node attached to `router` injected a packet.
    #[inline]
    pub fn on_inject(&mut self, t_ps: u64, router: u32, node: u32, dst: u32, bytes: u32, indirect: bool) {
        if self.defer(t_ps) {
            self.pending
                .push((t_ps, PendingSample::Inject { bytes, indirect }));
        } else {
            self.win_injected_pkts += 1;
            self.win_injected_bytes += bytes as u64;
            if indirect {
                self.win_indirect_pkts += 1;
            }
        }
        self.total_injected += 1;
        if indirect {
            self.total_indirect += 1;
        }
        self.ring_push(
            router,
            RingEvent {
                t_ps,
                kind: RingEventKind::Inject { node, dst, indirect },
            },
        );
    }

    /// A packet was delivered to `node` on `router`.
    #[inline]
    pub fn on_eject(&mut self, t_ps: u64, router: u32, node: u32, src: u32, bytes: u32, delay_ps: u64) {
        if self.defer(t_ps) {
            self.pending.push((t_ps, PendingSample::Eject { bytes }));
        } else {
            self.win_ejected_bytes += bytes as u64;
        }
        self.total_ejected += 1;
        self.ejected_per_router[router as usize] += 1;
        self.ring_push(
            router,
            RingEvent {
                t_ps,
                kind: RingEventKind::Eject { node, src, delay_ps },
            },
        );
    }

    /// An output port started serializing `bytes` at `t_ps`.
    #[inline]
    pub fn on_send(&mut self, t_ps: u64, port: u32, bytes: u32) {
        if self.defer(t_ps) {
            self.pending.push((t_ps, PendingSample::Send { port, bytes }));
        } else {
            self.win_sent[port as usize] += bytes as u64;
        }
    }

    /// A scheduled fault killed one of `router`'s links; `dropped`
    /// queued packets were flushed from the dead output buffers.
    #[inline]
    pub fn on_link_down(&mut self, t_ps: u64, router: u32, peer_router: u32, dropped: u32) {
        self.total_link_down += 1;
        self.total_flushed += dropped as u64;
        self.ring_push(
            router,
            RingEvent {
                t_ps,
                kind: RingEventKind::LinkDown {
                    peer_router,
                    dropped,
                },
            },
        );
    }

    /// An input (port, VC) transitioned into the blocked state.
    #[inline]
    pub fn on_blocked(&mut self, t_ps: u64, in_port: u32, in_vc: u8, out_port: u32, out_vc: u8) {
        let router = self.port_owner[in_port as usize];
        self.ring_push(
            router,
            RingEvent {
                t_ps,
                kind: RingEventKind::Blocked {
                    in_port,
                    in_vc,
                    out_port,
                    out_vc,
                },
            },
        );
    }

    /// Flushes every sample window whose half-open span `[start, end)`
    /// ends at or before simulated time `t`. Buffer state is
    /// piecewise-constant between events, so reading the occupancies once
    /// per crossed boundary is exact. An event recorded at exactly a
    /// window boundary counts toward the *later* window.
    pub fn sample_to(&mut self, t: u64, in_occ: &[u64], out_occ: &[u64]) {
        while self.next_sample_ps <= t && self.samples_taken < self.cfg.max_samples {
            self.absorb_pending();
            self.take_sample(in_occ, out_occ);
        }
        self.absorb_pending();
    }

    /// Merges deferred contributions that now fall strictly inside the
    /// open window (`t < next_sample_ps`) into the accumulators. Window
    /// counters are commutative, so removal order doesn't matter.
    fn absorb_pending(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            let (t, p) = self.pending[i];
            if t < self.next_sample_ps {
                match p {
                    PendingSample::Inject { bytes, indirect } => {
                        self.win_injected_pkts += 1;
                        self.win_injected_bytes += bytes as u64;
                        if indirect {
                            self.win_indirect_pkts += 1;
                        }
                    }
                    PendingSample::Eject { bytes } => self.win_ejected_bytes += bytes as u64,
                    PendingSample::Send { port, bytes } => {
                        self.win_sent[port as usize] += bytes as u64
                    }
                }
                self.pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn take_sample(&mut self, in_occ: &[u64], out_occ: &[u64]) {
        let wb = self.window_bytes as f32;
        for port in 0..self.num_ports as usize {
            // A send is attributed to its start window, so a window can
            // nominally exceed capacity by one packet; clamp for reporting.
            let u = (self.win_sent[port] as f32 / wb).min(1.0);
            self.link_util.push(u);
            self.win_sent[port] = 0;
        }
        let cap = self.vc_cap as f32;
        for &occ in in_occ {
            self.in_occupancy.push(occ as f32 / cap);
        }
        for &occ in out_occ {
            self.out_occupancy.push(occ as f32 / cap);
        }
        self.raw_inj_pkts.push(self.win_injected_pkts);
        self.raw_inj_bytes.push(self.win_injected_bytes);
        self.raw_ej_bytes.push(self.win_ejected_bytes);
        self.raw_indirect_pkts.push(self.win_indirect_pkts);
        self.win_injected_pkts = 0;
        self.win_injected_bytes = 0;
        self.win_ejected_bytes = 0;
        self.win_indirect_pkts = 0;
        self.samples_taken += 1;
        self.next_sample_ps += self.sample_interval_ps;
    }

    /// Folds the probe of a sibling shard into this one. Exactness
    /// argument: every per-port/per-VC sample value is non-zero on at
    /// most one shard (only a router's owner touches its state), so the
    /// f32 element-wise sums are `x + 0.0`; the aggregate window
    /// counters are raw integers here and become rates only after the
    /// merge; and the per-router rings are disjoint, so concatenation
    /// reproduces each router's serial ring. Both probes must have
    /// flushed to the same horizon first (equal sample counts).
    pub(crate) fn absorb(&mut self, other: Telemetry) {
        assert_eq!(
            self.samples_taken, other.samples_taken,
            "shard probes must be flushed to the same horizon before merging"
        );
        for (a, b) in self.link_util.iter_mut().zip(&other.link_util) {
            *a += *b;
        }
        for (a, b) in self.in_occupancy.iter_mut().zip(&other.in_occupancy) {
            *a += *b;
        }
        for (a, b) in self.out_occupancy.iter_mut().zip(&other.out_occupancy) {
            *a += *b;
        }
        for (a, b) in self.raw_inj_pkts.iter_mut().zip(&other.raw_inj_pkts) {
            *a += *b;
        }
        for (a, b) in self.raw_inj_bytes.iter_mut().zip(&other.raw_inj_bytes) {
            *a += *b;
        }
        for (a, b) in self.raw_ej_bytes.iter_mut().zip(&other.raw_ej_bytes) {
            *a += *b;
        }
        for (a, b) in self.raw_indirect_pkts.iter_mut().zip(&other.raw_indirect_pkts) {
            *a += *b;
        }
        for (a, b) in self.ejected_per_router.iter_mut().zip(&other.ejected_per_router) {
            *a += *b;
        }
        self.total_injected += other.total_injected;
        self.total_ejected += other.total_ejected;
        self.total_indirect += other.total_indirect;
        self.total_link_down += other.total_link_down;
        self.total_flushed += other.total_flushed;
        for (ring, other_ring) in self.rings.iter_mut().zip(other.rings) {
            debug_assert!(
                ring.is_empty() || other_ring.is_empty(),
                "router ring populated on two shards"
            );
            ring.extend(other_ring);
        }
    }

    /// Consumes the probe into its report, attaching forensics when the
    /// run wedged. The f32 rate series and the convergence scan are
    /// computed here from the raw window counters — after any shard
    /// merge, with exactly the arithmetic the serial probe used to
    /// perform sample-by-sample.
    pub fn into_report(self, deadlock: Option<DeadlockReport>) -> TelemetryReport {
        let node_window = self.window_bytes as f32 * self.num_nodes as f32;
        let injection_rate: Vec<f32> = self
            .raw_inj_bytes
            .iter()
            .map(|&b| b as f32 / node_window)
            .collect();
        let ejection_rate: Vec<f32> = self
            .raw_ej_bytes
            .iter()
            .map(|&b| b as f32 / node_window)
            .collect();
        let indirect_fraction: Vec<f32> = self
            .raw_inj_pkts
            .iter()
            .zip(&self.raw_indirect_pkts)
            .map(|(&pkts, &ind)| {
                if pkts > 0 {
                    ind as f32 / pkts as f32
                } else {
                    0.0
                }
            })
            .collect();
        // Convergence scan: first sample whose trailing window of
        // ejection rates agrees within tolerance.
        let w = self.cfg.convergence_window;
        let mut converged_at_ps = None;
        for s in w..=self.samples_taken {
            let tail = &ejection_rate[s - w..s];
            let (mut lo, mut hi, mut sum) = (f32::MAX, f32::MIN, 0.0f64);
            for &r in tail {
                lo = lo.min(r);
                hi = hi.max(r);
                sum += r as f64;
            }
            let mean = sum / w as f64;
            if mean > 0.0 && ((hi - lo) as f64) <= self.cfg.convergence_tolerance * mean {
                converged_at_ps = Some(s as u64 * self.sample_interval_ps);
                break;
            }
        }
        TelemetryReport {
            num_samples: self.samples_taken,
            num_routers: self.num_routers,
            num_nodes: self.num_nodes,
            num_ports: self.num_ports,
            num_vcs: self.num_vcs,
            port_owner: self.port_owner,
            port_is_node: self.port_is_node,
            link_util: self.link_util,
            in_occupancy: self.in_occupancy,
            out_occupancy: self.out_occupancy,
            injection_rate,
            ejection_rate,
            indirect_fraction,
            rings: self.rings.into_iter().map(Vec::from).collect(),
            total_injected_packets: self.total_injected,
            total_ejected_packets: self.total_ejected,
            total_indirect: self.total_indirect,
            total_dropped_packets: 0,
            total_retried_packets: 0,
            total_link_down_events: self.total_link_down,
            total_link_down_flushed: self.total_flushed,
            ejected_per_router: self.ejected_per_router,
            converged_at_ns: converged_at_ps.map(|t| t / 1_000),
            deadlock,
            config: self.cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_2ports() -> Telemetry {
        Telemetry::new(
            ProbeConfig {
                sample_interval_ns: 100, // window = 1250 bytes at 80 ps/B
                max_samples: 4,
                ring_capacity: 2,
                convergence_window: 2,
                convergence_tolerance: 0.5,
            },
            1,
            1,
            1,
            vec![0, 0],
            vec![false, true],
            1000,
            80,
        )
    }

    #[test]
    fn sampling_is_lazy_and_bounded() {
        let mut t = probe_2ports();
        t.on_send(0, 0, 625);
        // Jumping far ahead flushes the first window then (max_samples-1)
        // empty ones, and no more.
        t.sample_to(10_000_000, &[0, 0], &[500, 0]);
        assert_eq!(t.samples_taken, 4);
        let r = t.into_report(None);
        assert_eq!(r.num_samples, 4);
        assert!((r.link_utilization(0, 0) - 0.5).abs() < 1e-6);
        assert_eq!(r.link_utilization(1, 0), 0.0);
        assert!((r.output_occupancy(0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn utilization_clamps_at_unity() {
        let mut t = probe_2ports();
        t.on_send(0, 0, 99_999);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert_eq!(r.link_utilization(0, 0), 1.0);
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let mut t = probe_2ports();
        for i in 0..5u32 {
            t.on_inject(i as u64, 0, 0, i, 256, false);
        }
        let r = t.into_report(None);
        assert_eq!(r.rings[0].len(), 2);
        assert_eq!(r.rings[0][0].t_ps, 3);
        assert_eq!(r.rings[0][1].t_ps, 4);
    }

    #[test]
    fn convergence_detects_stable_ejection() {
        let mut t = probe_2ports();
        // Two equal-rate windows inside a window-2 band.
        t.on_eject(0, 0, 0, 0, 625, 0);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        t.on_eject(0, 0, 0, 0, 625, 0);
        t.sample_to(200_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert_eq!(r.converged_at_ns, Some(200));
    }

    #[test]
    fn idle_run_never_converges() {
        let mut t = probe_2ports();
        t.sample_to(400_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert_eq!(r.converged_at_ns, None);
    }

    #[test]
    fn summary_aggregates_network_ports_only() {
        let mut t = probe_2ports();
        t.on_send(0, 0, 625); // network port
        t.on_send(0, 1, 1250); // node port: excluded from link stats
        t.on_inject(0, 0, 0, 0, 256, true);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        let s = r.summary();
        assert!((s.mean_link_utilization - 0.5).abs() < 1e-6);
        assert!((s.peak_link_utilization - 0.5).abs() < 1e-6);
        assert_eq!(s.mean_indirect_fraction, 1.0);
        assert_eq!(s.deadlock_cycle_len, 0);
    }

    #[test]
    fn deadlock_report_renders_cycle() {
        let rep = DeadlockReport {
            cycle: vec![
                WaitPoint {
                    router: 0,
                    port: 1,
                    vc: 0,
                    side: WaitSide::Input,
                    occupancy_bytes: 256,
                    queue_len: 1,
                    head_src: 0,
                    head_dst: 2,
                    head_hop: 1,
                    head_route: vec![0, 1, 2],
                    missing_credits: 0,
                },
                WaitPoint {
                    router: 1,
                    port: 4,
                    vc: 0,
                    side: WaitSide::Output,
                    occupancy_bytes: 256,
                    queue_len: 1,
                    head_src: 1,
                    head_dst: 3,
                    head_hop: 1,
                    head_route: vec![1, 2, 3],
                    missing_credits: 256,
                },
            ],
            stranded_packets: 7,
            t_ps: 5_000_000,
        };
        let s = rep.render();
        assert!(s.contains("DEADLOCK at t=5000 ns"));
        assert!(s.contains("7 packets stranded"));
        assert!(s.contains("cycle of 2 buffers"));
        assert!(s.contains("credit missing"));
        assert!(!rep.is_partition());
    }

    #[test]
    fn partition_report_renders_distinctly_from_deadlock() {
        let rep = DeadlockReport {
            cycle: Vec::new(),
            stranded_packets: 3,
            t_ps: 2_000_000,
        };
        assert!(rep.is_partition());
        let s = rep.render();
        assert!(s.contains("WEDGED WITHOUT A WAIT-FOR CYCLE at t=2000 ns"));
        assert!(s.contains("3 packets stranded"));
        assert!(s.contains("partition"));
        assert!(!s.contains("DEADLOCK at"));
    }

    #[test]
    fn link_down_events_land_in_the_ring() {
        let mut t = probe_2ports();
        t.on_link_down(5, 0, 7, 2);
        let r = t.into_report(None);
        assert_eq!(r.rings[0].len(), 1);
        assert!(matches!(
            r.rings[0][0].kind,
            RingEventKind::LinkDown {
                peer_router: 7,
                dropped: 2
            }
        ));
    }

    #[test]
    fn link_down_totals_reach_the_summary() {
        let mut t = probe_2ports();
        t.on_link_down(5, 0, 7, 2);
        t.on_link_down(9, 0, 3, 4);
        let mut r = t.into_report(None);
        assert_eq!(r.total_link_down_events, 2);
        assert_eq!(r.total_link_down_flushed, 6);
        // The engine folds its drop/retry counters in when detaching.
        r.total_dropped_packets = 11;
        r.total_retried_packets = 5;
        let s = r.summary();
        assert_eq!(s.link_down_events, 2);
        assert_eq!(s.link_down_flushed, 6);
        assert_eq!(s.dropped_packets, 11);
        assert_eq!(s.retried_packets, 5);
    }

    #[test]
    fn boundary_event_belongs_to_the_later_window() {
        // An ejection at exactly the first window's end (t == 100 µs·ps
        // boundary) must land in window [100k, 200k), not [0, 100k) —
        // windows are half-open. Recording before flushing is the order
        // that used to double-count into the earlier window.
        let mut t = probe_2ports();
        t.on_eject(100_000, 0, 0, 0, 625, 0);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        t.sample_to(200_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert_eq!(r.ejection_rate[0], 0.0, "boundary event leaked into the earlier window");
        assert!((r.ejection_rate[1] - 0.5).abs() < 1e-6);
        // Totals are unaffected by the deferral.
        assert_eq!(r.total_ejected_packets, 1);
    }

    #[test]
    fn strictly_interior_events_stay_in_their_window() {
        let mut t = probe_2ports();
        t.on_eject(99_999, 0, 0, 0, 625, 0);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        t.sample_to(200_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert!((r.ejection_rate[0] - 0.5).abs() < 1e-6);
        assert_eq!(r.ejection_rate[1], 0.0);
    }

    #[test]
    fn boundary_send_defers_like_ejections() {
        let mut t = probe_2ports();
        t.on_send(100_000, 0, 625);
        t.sample_to(100_000, &[0, 0], &[0, 0]);
        t.sample_to(200_000, &[0, 0], &[0, 0]);
        let r = t.into_report(None);
        assert_eq!(r.link_utilization(0, 0), 0.0);
        assert!((r.link_utilization(1, 0) - 0.5).abs() < 1e-6);
    }
}
