//! Load sweeps and saturation search — the X axes of the paper's
//! throughput/delay figures (Figs. 6–12).

use crate::config::SimConfig;
use crate::engine::run_synthetic;
use crate::stats::SyntheticStats;
use d2net_routing::RoutePolicy;
use d2net_topo::Network;
use d2net_traffic::SyntheticPattern;

/// One point of a throughput/delay curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    pub load: f64,
    pub stats: SyntheticStats,
}

/// Simulates `net` at each offered load in `loads`, returning one curve
/// point per load.
pub fn load_sweep(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> Vec<SweepPoint> {
    loads
        .iter()
        .map(|&load| SweepPoint {
            load,
            stats: run_synthetic(net, policy, pattern, load, duration_ns, warmup_ns, cfg),
        })
        .collect()
}

/// The standard load grid used by the figure harness: 5 % to 100 % in
/// settable steps.
pub fn load_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    (1..=steps)
        .map(|i| i as f64 / steps as f64)
        .collect()
}

/// Estimates the saturation throughput: the accepted throughput when
/// offering full load (the plateau of the throughput curve).
pub fn saturation_throughput(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> f64 {
    run_synthetic(net, policy, pattern, 1.0, duration_ns, warmup_ns, cfg).throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = load_grid(10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[9] - 1.0).abs() < 1e-12);
    }
}
