//! Load sweeps and saturation search — the X axes of the paper's
//! throughput/delay figures (Figs. 6–12).

use crate::config::SimConfig;
use crate::engine::{run_synthetic, run_synthetic_probed};
use crate::stats::SyntheticStats;
use crate::telemetry::{ProbeConfig, TelemetrySummary};
use d2net_routing::RoutePolicy;
use d2net_topo::Network;
use d2net_traffic::SyntheticPattern;

/// One point of a throughput/delay curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    pub load: f64,
    pub stats: SyntheticStats,
    /// Present when the sweep ran with a probe attached
    /// ([`load_sweep_probed`]); plain [`load_sweep`] leaves it `None`.
    pub telemetry: Option<TelemetrySummary>,
}

/// Simulates `net` at each offered load in `loads`, returning one curve
/// point per load.
///
/// If a point wedges, the remaining (higher) loads are not simulated: a
/// deadlocked network stays deadlocked under more pressure, and each
/// wedged point would otherwise burn a full simulated horizon. Skipped
/// points carry [`SyntheticStats::deadlocked_stub`] so curves keep one
/// entry per requested load.
pub fn load_sweep(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> Vec<SweepPoint> {
    // One static pass covers every load point: verification is
    // load-independent, so the per-point configs run with it disabled.
    let cfg = crate::engine::preflight_once(net, policy, cfg);
    sweep_impl(loads, |load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => SweepPoint {
            load,
            stats: run_synthetic(net, policy, pattern, load, duration_ns, warmup_ns, cfg),
            telemetry: None,
        },
    })
}

/// [`load_sweep`] with an observability probe attached to every simulated
/// point; each [`SweepPoint`] carries its [`TelemetrySummary`].
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_probed(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> Vec<SweepPoint> {
    let cfg = crate::engine::preflight_once(net, policy, cfg);
    sweep_impl(loads, |load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => {
            let (stats, report) =
                run_synthetic_probed(net, policy, pattern, load, duration_ns, warmup_ns, cfg, probe);
            SweepPoint {
                load,
                stats,
                telemetry: Some(report.summary()),
            }
        }
    })
}

/// Shared early-abort loop: `point` receives the load and, once any point
/// has wedged, the load that first wedged.
fn sweep_impl(loads: &[f64], mut point: impl FnMut(f64, Option<f64>) -> SweepPoint) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(loads.len());
    let mut first_wedge: Option<f64> = None;
    for &load in loads {
        let p = point(load, first_wedge);
        if p.stats.deadlocked && first_wedge.is_none() {
            first_wedge = Some(load);
            eprintln!(
                "load_sweep: network wedged at offered load {load:.3}; \
                 marking remaining loads deadlocked without simulating them"
            );
        }
        out.push(p);
    }
    out
}

/// The standard load grid used by the figure harness: 5 % to 100 % in
/// settable steps.
pub fn load_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    (1..=steps)
        .map(|i| i as f64 / steps as f64)
        .collect()
}

/// Estimates the saturation throughput: the accepted throughput when
/// offering full load (the plateau of the throughput curve).
pub fn saturation_throughput(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> f64 {
    run_synthetic(net, policy, pattern, 1.0, duration_ns, warmup_ns, cfg).throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = load_grid(10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_abort_stubs_higher_loads() {
        // Simulate the sweep loop with a synthetic "wedges at 0.5" run.
        let mut simulated = Vec::new();
        let points = sweep_impl(&[0.25, 0.5, 0.75, 1.0], |load, first_wedge| {
            if first_wedge.is_some() {
                return SweepPoint {
                    load,
                    stats: SyntheticStats::deadlocked_stub(load),
                    telemetry: None,
                };
            }
            simulated.push(load);
            let mut stats = SyntheticStats::deadlocked_stub(load);
            stats.deadlocked = load >= 0.5;
            stats.throughput = load;
            SweepPoint {
                load,
                stats,
                telemetry: None,
            }
        });
        assert_eq!(simulated, vec![0.25, 0.5]);
        assert_eq!(points.len(), 4);
        assert!(!points[0].stats.deadlocked);
        assert!(points[1].stats.deadlocked);
        assert!(points[2].stats.deadlocked && points[2].stats.throughput == 0.0);
        assert!(points[3].stats.deadlocked && points[3].stats.delivered_packets == 0);
    }
}
