//! Load sweeps and saturation search — the X axes of the paper's
//! throughput/delay figures (Figs. 6–12).
//!
//! Every sweep point runs from an **index-derived seed**
//! ([`point_seed`]), so a point's simulated schedule depends only on
//! `(base seed, index)` — never on which points ran before it or on
//! which thread. That is what lets [`crate::par::par_load_sweep`] return
//! byte-identical results to the serial functions here.

use crate::config::SimConfig;
use crate::engine::{synthetic_sources, Engine};
use crate::ledger::{EngineLedger, LedgerConfig, PointLedger};
use crate::stats::SyntheticStats;
use crate::telemetry::{ProbeConfig, TelemetryReport, TelemetrySummary};
use crate::trace::{EngineTrace, PointTrace, TraceConfig};
use d2net_routing::RoutePolicy;
use d2net_topo::Network;
use d2net_traffic::SyntheticPattern;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Write;

/// One point of a throughput/delay curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    pub load: f64,
    pub stats: SyntheticStats,
    /// Present when the sweep ran with a probe attached
    /// ([`load_sweep_probed`]); plain [`load_sweep`] leaves it `None`.
    pub telemetry: Option<TelemetrySummary>,
}

/// A structured event a sweep wants the caller to know about — today
/// only the early-abort on a wedged point. Routed through the report
/// layer (it lands in `RunManifest`) instead of being `eprintln!`ed from
/// inside the sweep, so parallel workers never interleave on stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepNotice {
    /// Index of the point that triggered the notice.
    pub index: usize,
    /// Offered load of that point.
    pub load: f64,
    pub message: String,
}

impl SweepNotice {
    pub(crate) fn wedged(index: usize, load: f64) -> Self {
        SweepNotice {
            index,
            load,
            message: format!(
                "network wedged at offered load {load:.3}; \
                 marking remaining loads deadlocked without simulating them"
            ),
        }
    }

    /// A sweep whose configuration was rejected before any point could
    /// run (failed preflight, undersized buffers, warm-up ≥ duration).
    pub(crate) fn rejected(load: f64, reason: String) -> Self {
        SweepNotice {
            index: 0,
            load,
            message: format!("configuration rejected before simulating any point: {reason}"),
        }
    }

    /// One-line rendering, as the legacy stderr message.
    pub fn render(&self) -> String {
        format!("load_sweep: {}", self.message)
    }
}

/// The outcome of a sweep whose configuration was rejected up front:
/// every load carries a [`SyntheticStats::rejected_stub`] and a single
/// notice carries the reason — the same shape serial and parallel.
pub(crate) fn rejected_outcome(loads: &[f64], reason: String) -> SweepOutcome {
    SweepOutcome {
        points: loads
            .iter()
            .map(|&load| SweepPoint {
                load,
                stats: SyntheticStats::rejected_stub(load),
                telemetry: None,
            })
            .collect(),
        notices: vec![SweepNotice::rejected(
            loads.first().copied().unwrap_or(0.0),
            reason,
        )],
    }
}

/// A sweep's points plus any notices it raised.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    pub points: Vec<SweepPoint>,
    pub notices: Vec<SweepNotice>,
}

impl SweepOutcome {
    /// Renders all notices to stderr in a single locked write (safe to
    /// call from concurrent sweeps without interleaving garbage).
    pub fn print_notices(&self) {
        if self.notices.is_empty() {
            return;
        }
        let mut text = String::new();
        for n in &self.notices {
            text.push_str(&n.render());
            text.push('\n');
        }
        let _ = std::io::stderr().lock().write_all(text.as_bytes());
    }
}

/// Derives the RNG seed for sweep point `idx` from the config's base
/// seed: a SplitMix64-style finalizer over `base ⊕ golden·(idx+1)`.
/// Deterministic, order-free, and well-spread even for adjacent indices
/// — serial and parallel sweeps both seed every point through here.
/// (Single runs via [`crate::run_synthetic`] keep the raw `cfg.seed`.)
pub fn point_seed(base: u64, idx: usize) -> u64 {
    let mut z = base ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulates successive points of one sweep on a single reusable
/// [`Engine`]: the first point builds it, later points [`Engine::reset`]
/// it, so the flat per-port state is allocated once per curve (serial)
/// or once per worker (parallel) instead of once per point.
pub(crate) struct PointRunner<'a> {
    net: &'a Network,
    policy: &'a RoutePolicy,
    pattern: &'a SyntheticPattern,
    cfg: SimConfig,
    end_ps: u64,
    warmup_ps: u64,
    /// Intra-run shard count every point uses (see
    /// [`crate::shard::plan_shards`]); at `1` points run on the
    /// reusable serial engine below, otherwise each point runs the
    /// window-barrier protocol (whose output is byte-identical).
    shards: usize,
    engine: Option<Engine<'a>>,
}

impl<'a> PointRunner<'a> {
    /// `cfg` must already have preflight resolved (see
    /// [`crate::engine::try_preflight_once`]); the runner never
    /// re-verifies. Inconsistent parameters (warm-up ≥ duration, buffers
    /// too small for the policy's VCs) come back as a coded `Err` for the
    /// sweep to surface as a [`SweepNotice`] — after this succeeds,
    /// building the engine per point cannot fail.
    pub(crate) fn try_new(
        net: &'a Network,
        policy: &'a RoutePolicy,
        pattern: &'a SyntheticPattern,
        cfg: SimConfig,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> Result<Self, String> {
        d2net_verify::invariant::warmup_within(warmup_ns, duration_ns)?;
        d2net_verify::invariant::vc_buffer_sufficient(
            cfg.buffer_bytes,
            policy.num_vcs(),
            cfg.packet_bytes,
        )?;
        Ok(PointRunner {
            net,
            policy,
            pattern,
            cfg,
            end_ps: duration_ns * 1_000,
            warmup_ps: warmup_ns * 1_000,
            shards: crate::shard::plan_shards(net, policy, &cfg),
            engine: None,
        })
    }

    /// Runs point `idx` at `load`; the result depends only on
    /// `(cfg, idx, load)`, never on previously run points.
    pub(crate) fn run_point(
        &mut self,
        idx: usize,
        load: f64,
        probe: Option<ProbeConfig>,
        trace: Option<TraceConfig>,
        ledger: Option<LedgerConfig>,
    ) -> (
        SyntheticStats,
        Option<TelemetryReport>,
        Option<EngineTrace>,
        Option<EngineLedger>,
    ) {
        if self.shards > 1 {
            // The sharded runner re-derives the run's randomness from
            // `cfg.seed`; substituting the point seed reproduces
            // exactly the stream the serial branch below would use.
            let mut pcfg = self.cfg;
            pcfg.seed = point_seed(self.cfg.seed, idx);
            return crate::shard::run_sharded_inner(
                self.net,
                self.policy,
                self.pattern,
                None,
                load,
                self.end_ps,
                self.warmup_ps,
                pcfg,
                probe,
                trace,
                ledger,
            )
            .expect("point parameters were validated in try_new");
        }
        let mut rng = SmallRng::seed_from_u64(point_seed(self.cfg.seed, idx));
        let sources = synthetic_sources(self.net, self.pattern, load, self.end_ps, &self.cfg, &mut rng);
        let engine = match &mut self.engine {
            Some(e) => {
                e.reset(sources, self.warmup_ps, rng);
                e
            }
            None => self.engine.insert(Engine::new(
                self.net,
                self.policy,
                self.cfg,
                sources,
                self.warmup_ps,
                rng,
            )),
        };
        if let Some(p) = probe {
            engine.attach_probe(p);
        }
        if let Some(t) = trace {
            engine.attach_trace(t);
        }
        if let Some(l) = ledger {
            engine.attach_ledger(l);
        }
        let (stats, report) = engine.run_synthetic_to(load, self.end_ps);
        let tr = engine.take_trace();
        let led = engine.take_ledger();
        (stats, report, tr, led)
    }
}

/// Simulates `net` at each offered load in `loads`, returning one curve
/// point per load plus any [`SweepNotice`]s raised.
///
/// If a point wedges, the remaining (higher) loads are not simulated: a
/// deadlocked network stays deadlocked under more pressure, and each
/// wedged point would otherwise burn a full simulated horizon. Skipped
/// points carry [`SyntheticStats::deadlocked_stub`] so curves keep one
/// entry per requested load.
pub fn load_sweep_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> SweepOutcome {
    // One static pass covers every load point: verification is
    // load-independent, so the per-point configs run with it disabled.
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return rejected_outcome(loads, e),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return rejected_outcome(loads, e),
    };
    sweep_impl(loads, |idx, load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => SweepPoint {
            load,
            stats: runner.run_point(idx, load, None, None, None).0,
            telemetry: None,
        },
    })
}

/// [`load_sweep_collect`], printing notices to stderr and returning the
/// bare points — the convenient form for interactive callers.
pub fn load_sweep(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> Vec<SweepPoint> {
    let out = load_sweep_collect(net, policy, pattern, loads, duration_ns, warmup_ns, cfg);
    out.print_notices();
    out.points
}

/// [`load_sweep_collect`] with an observability probe attached to every
/// simulated point; each [`SweepPoint`] carries its [`TelemetrySummary`].
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_probed_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> SweepOutcome {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return rejected_outcome(loads, e),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return rejected_outcome(loads, e),
    };
    sweep_impl(loads, |idx, load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => {
            let (stats, report, _, _) = runner.run_point(idx, load, Some(probe), None, None);
            SweepPoint {
                load,
                stats,
                telemetry: Some(report.expect("probe was attached").summary()),
            }
        }
    })
}

/// [`load_sweep`] with an observability probe attached to every simulated
/// point; each [`SweepPoint`] carries its [`TelemetrySummary`].
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_probed(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> Vec<SweepPoint> {
    let out =
        load_sweep_probed_collect(net, policy, pattern, loads, duration_ns, warmup_ns, cfg, probe);
    out.print_notices();
    out.points
}

/// [`load_sweep_collect`] with a [`TraceConfig`] attached to every
/// simulated point. Returns the outcome plus one [`PointTrace`] per
/// *simulated* point, in index order — wedge-stubbed points have no
/// trace, exactly like the parallel variant, so serial and parallel
/// trace files stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_traced_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    trace: TraceConfig,
) -> (SweepOutcome, Vec<PointTrace>) {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut traces = Vec::new();
    let out = sweep_impl(loads, |idx, load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => {
            let (stats, _, tr, _) = runner.run_point(idx, load, None, Some(trace), None);
            traces.push(PointTrace {
                index: idx,
                load,
                trace: tr.expect("trace was attached"),
            });
            SweepPoint {
                load,
                stats,
                telemetry: None,
            }
        }
    });
    (out, traces)
}

/// [`load_sweep_collect`] with a [`LedgerConfig`] attached to every
/// simulated point. Returns the outcome plus one [`PointLedger`] per
/// *simulated* point, in index order — wedge-stubbed points have no
/// ledger, exactly like the parallel variant, so serial and parallel
/// ledger serializations stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_ledgered_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    ledger: LedgerConfig,
) -> (SweepOutcome, Vec<PointLedger>) {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut ledgers = Vec::new();
    let out = sweep_impl(loads, |idx, load, first_wedge| match first_wedge {
        Some(_) => SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        None => {
            let (stats, _, _, led) = runner.run_point(idx, load, None, None, Some(ledger));
            ledgers.push(PointLedger {
                index: idx,
                load,
                ledger: led.expect("ledger was attached"),
            });
            SweepPoint {
                load,
                stats,
                telemetry: None,
            }
        }
    });
    (out, ledgers)
}

/// Shared early-abort loop: `point` receives the index, the load and,
/// once any point has wedged, the load that first wedged.
fn sweep_impl(
    loads: &[f64],
    mut point: impl FnMut(usize, f64, Option<f64>) -> SweepPoint,
) -> SweepOutcome {
    let mut points = Vec::with_capacity(loads.len());
    let mut notices = Vec::new();
    let mut first_wedge: Option<f64> = None;
    for (idx, &load) in loads.iter().enumerate() {
        let p = point(idx, load, first_wedge);
        if p.stats.deadlocked && first_wedge.is_none() {
            first_wedge = Some(load);
            notices.push(SweepNotice::wedged(idx, load));
        }
        points.push(p);
    }
    SweepOutcome { points, notices }
}

/// The standard load grid used by the figure harness: `steps` evenly
/// spaced points from `1/steps` to 100 % of link bandwidth (so
/// `load_grid(20)` is the paper's 5 %–100 % axis, while `load_grid(10)`
/// starts at 10 %). For a grid whose floor is decoupled from its
/// resolution, use [`load_grid_from`].
pub fn load_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    (1..=steps)
        .map(|i| i as f64 / steps as f64)
        .collect()
}

/// `steps` evenly spaced offered loads from `start` to 100 % inclusive —
/// a sweep axis whose floor does not move when the resolution changes.
pub fn load_grid_from(start: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    assert!(
        start > 0.0 && start < 1.0,
        "start must be in (0, 1), got {start}"
    );
    (0..steps)
        .map(|i| start + (1.0 - start) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// Estimates the saturation throughput: the accepted throughput when
/// offering full load (the plateau of the throughput curve).
pub fn saturation_throughput(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> f64 {
    crate::engine::run_synthetic(net, policy, pattern, 1.0, duration_ns, warmup_ns, cfg).throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = load_grid(10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_from_pins_both_ends() {
        let g = load_grid_from(0.05, 20);
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
        // Doubling the resolution keeps the floor (unlike load_grid).
        let fine = load_grid_from(0.05, 39);
        assert!((fine[0] - 0.05).abs() < 1e-12);
        assert!((fine[38] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_seeds_spread_and_are_index_pure() {
        let base = SimConfig::default().seed;
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(base, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_eq!(a, point_seed(base, i), "pure function of (base, idx)");
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "adjacent indices must not collide");
            }
        }
        assert_ne!(point_seed(1, 0), point_seed(2, 0), "base seed must matter");
    }

    #[test]
    fn early_abort_stubs_higher_loads_and_raises_one_notice() {
        // Simulate the sweep loop with a synthetic "wedges at 0.5" run.
        let mut simulated = Vec::new();
        let out = sweep_impl(&[0.25, 0.5, 0.75, 1.0], |_, load, first_wedge| {
            if first_wedge.is_some() {
                return SweepPoint {
                    load,
                    stats: SyntheticStats::deadlocked_stub(load),
                    telemetry: None,
                };
            }
            simulated.push(load);
            let mut stats = SyntheticStats::deadlocked_stub(load);
            stats.deadlocked = load >= 0.5;
            stats.throughput = load;
            SweepPoint {
                load,
                stats,
                telemetry: None,
            }
        });
        assert_eq!(simulated, vec![0.25, 0.5]);
        let points = &out.points;
        assert_eq!(points.len(), 4);
        assert!(!points[0].stats.deadlocked);
        assert!(points[1].stats.deadlocked);
        assert!(points[2].stats.deadlocked && points[2].stats.throughput == 0.0);
        assert!(points[3].stats.deadlocked && points[3].stats.delivered_packets == 0);
        assert_eq!(out.notices.len(), 1);
        assert_eq!(out.notices[0].index, 1);
        assert!((out.notices[0].load - 0.5).abs() < 1e-12);
        assert!(out.notices[0].render().contains("wedged at offered load 0.500"));
    }
}
