//! Load sweeps and saturation search — the X axes of the paper's
//! throughput/delay figures (Figs. 6–12).
//!
//! Every sweep point runs from an **index-derived seed**
//! ([`point_seed`]), so a point's simulated schedule depends only on
//! `(base seed, index)` — never on which points ran before it or on
//! which thread. That is what lets [`crate::par::par_load_sweep`] return
//! byte-identical results to the serial functions here.

use crate::config::{EngineChaos, SimConfig};
use crate::engine::{synthetic_sources, Engine};
use crate::ledger::{EngineLedger, LedgerConfig, PointLedger};
use crate::stats::SyntheticStats;
use crate::telemetry::{ProbeConfig, TelemetryReport, TelemetrySummary};
use crate::trace::{EngineTrace, PointTrace, TraceConfig};
use d2net_routing::RoutePolicy;
use d2net_topo::Network;
use d2net_traffic::SyntheticPattern;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Write;

/// One point of a throughput/delay curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    pub load: f64,
    pub stats: SyntheticStats,
    /// Present when the sweep ran with a probe attached
    /// ([`load_sweep_probed`]); plain [`load_sweep`] leaves it `None`.
    pub telemetry: Option<TelemetrySummary>,
}

/// A structured event a sweep wants the caller to know about — an
/// early-abort on a wedged point, a rejected configuration, a point
/// isolated after a panic, or a point aborted by its run budget. Routed
/// through the report layer (it lands in `RunManifest`) instead of
/// being `eprintln!`ed from inside the sweep, so parallel workers never
/// interleave on stderr. `code` is the machine-readable discriminator
/// (`"wedged"`, `"rejected"`, `"panicked"`, `"exhausted"`, …);
/// `message` is the human-readable rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepNotice {
    /// Machine-readable notice code.
    pub code: &'static str,
    /// Index of the point that triggered the notice.
    pub index: usize,
    /// Offered load of that point.
    pub load: f64,
    pub message: String,
}

impl SweepNotice {
    /// A notice with a caller-chosen code — the hook for layers above
    /// `sim` (the journal replay, the batch service) to speak the same
    /// notice dialect as the sweeps.
    pub fn new(code: &'static str, index: usize, load: f64, message: String) -> Self {
        SweepNotice {
            code,
            index,
            load,
            message,
        }
    }

    pub(crate) fn wedged(index: usize, load: f64) -> Self {
        SweepNotice {
            code: "wedged",
            index,
            load,
            message: format!(
                "network wedged at offered load {load:.3}; \
                 marking remaining loads deadlocked without simulating them"
            ),
        }
    }

    /// A sweep whose configuration was rejected before any point could
    /// run (failed preflight, undersized buffers, warm-up ≥ duration).
    pub(crate) fn rejected(load: f64, reason: String) -> Self {
        SweepNotice {
            code: "rejected",
            index: 0,
            load,
            message: format!("configuration rejected before simulating any point: {reason}"),
        }
    }

    /// A point whose simulation panicked; `catch_unwind` isolated it
    /// into a [`SyntheticStats::panicked_stub`] instead of killing the
    /// process.
    pub(crate) fn panicked(index: usize, load: f64, panic_msg: &str) -> Self {
        SweepNotice {
            code: "panicked",
            index,
            load,
            message: format!(
                "point at offered load {load:.3} panicked and was stubbed: {panic_msg}"
            ),
        }
    }

    /// A point aborted by its [`crate::RunBudget`]; the point keeps its
    /// partial measurements with [`SyntheticStats::exhausted`] set.
    pub(crate) fn exhausted(index: usize, load: f64) -> Self {
        SweepNotice {
            code: "exhausted",
            index,
            load,
            message: format!(
                "run budget exhausted at offered load {load:.3}; \
                 partial measurements kept"
            ),
        }
    }

    /// One-line rendering, as the legacy stderr message.
    pub fn render(&self) -> String {
        format!("load_sweep: {}", self.message)
    }
}

/// The outcome of a sweep whose configuration was rejected up front:
/// every load carries a [`SyntheticStats::rejected_stub`] and a single
/// notice carries the reason — the same shape serial and parallel.
pub(crate) fn rejected_outcome(loads: &[f64], reason: String) -> SweepOutcome {
    let notice = SweepNotice::rejected(loads.first().copied().unwrap_or(0.0), reason);
    crate::obs::notice(&notice);
    SweepOutcome {
        points: loads
            .iter()
            .map(|&load| SweepPoint {
                load,
                stats: SyntheticStats::rejected_stub(load),
                telemetry: None,
            })
            .collect(),
        notices: vec![notice],
    }
}

/// A sweep's points plus any notices it raised.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    pub points: Vec<SweepPoint>,
    pub notices: Vec<SweepNotice>,
}

impl SweepOutcome {
    /// Renders all notices to stderr in a single locked write (safe to
    /// call from concurrent sweeps without interleaving garbage). With
    /// observability enabled ([`crate::obs::enabled`]) this is a no-op:
    /// every notice already reached the event stream, coded string
    /// intact, when the sweep assembled it.
    pub fn print_notices(&self) {
        if self.notices.is_empty() || crate::obs::enabled() {
            return;
        }
        let mut text = String::new();
        for n in &self.notices {
            text.push_str(&n.render());
            text.push('\n');
        }
        let _ = std::io::stderr().lock().write_all(text.as_bytes());
    }
}

/// How one sweep point ended — the discriminator [`sweep_impl`] (and
/// the parallel post-pass in [`crate::par`]) uses to decide which
/// notice, if any, a point raises. Kept separate from the stats so a
/// panicked point (whose stub also reads `deadlocked`) never triggers
/// the wedge early-abort: a panic is an isolated fault, not evidence
/// the network deadlocks at every higher load.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PointFate {
    /// Ran to completion; the stats are real (and may report a genuine
    /// wedge or a budget exhaustion).
    Simulated,
    /// Stubbed without simulating because a lower load already wedged.
    Skipped,
    /// The simulation panicked and was isolated; carries the panic
    /// message. The point holds a [`SyntheticStats::panicked_stub`].
    Panicked(String),
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// True while this thread runs an isolated point — consulted by the
    /// wrapper panic hook below.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Runs `f` with the default panic printout suppressed on this thread.
/// Installed process-wide exactly once as a wrapper that delegates to
/// the previous hook for every panic *not* raised under this guard, so
/// unrelated panics (test harness assertions, other threads) keep their
/// normal backtrace output.
pub(crate) fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let out = f();
    QUIET_PANICS.with(|q| q.set(false));
    out
}

/// Derives the RNG seed for sweep point `idx` from the config's base
/// seed: a SplitMix64-style finalizer over `base ⊕ golden·(idx+1)`.
/// Deterministic, order-free, and well-spread even for adjacent indices
/// — serial and parallel sweeps both seed every point through here.
/// (Single runs via [`crate::run_synthetic`] keep the raw `cfg.seed`.)
pub fn point_seed(base: u64, idx: usize) -> u64 {
    let mut z = base ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulates successive points of one sweep on a single reusable
/// [`Engine`]: the first point builds it, later points [`Engine::reset`]
/// it, so the flat per-port state is allocated once per curve (serial)
/// or once per worker (parallel) instead of once per point.
pub(crate) struct PointRunner<'a> {
    net: &'a Network,
    policy: &'a RoutePolicy,
    pattern: &'a SyntheticPattern,
    cfg: SimConfig,
    end_ps: u64,
    warmup_ps: u64,
    /// Intra-run shard count every point uses (see
    /// [`crate::shard::plan_shards`]); at `1` points run on the
    /// reusable serial engine below, otherwise each point runs the
    /// window-barrier protocol (whose output is byte-identical).
    shards: usize,
    engine: Option<Engine<'a>>,
    /// Per-point chaos override armed by the supervisor (see
    /// [`crate::supervise`]); `None` falls back to `cfg.chaos`, which
    /// applies the same fault to every point.
    chaos: Option<EngineChaos>,
}

impl<'a> PointRunner<'a> {
    /// `cfg` must already have preflight resolved (see
    /// [`crate::engine::try_preflight_once`]); the runner never
    /// re-verifies. Inconsistent parameters (warm-up ≥ duration, buffers
    /// too small for the policy's VCs) come back as a coded `Err` for the
    /// sweep to surface as a [`SweepNotice`] — after this succeeds,
    /// building the engine per point cannot fail.
    pub(crate) fn try_new(
        net: &'a Network,
        policy: &'a RoutePolicy,
        pattern: &'a SyntheticPattern,
        cfg: SimConfig,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> Result<Self, String> {
        d2net_verify::invariant::warmup_within(warmup_ns, duration_ns)?;
        d2net_verify::invariant::vc_buffer_sufficient(
            cfg.buffer_bytes,
            policy.num_vcs(),
            cfg.packet_bytes,
        )?;
        Ok(PointRunner {
            net,
            policy,
            pattern,
            cfg,
            end_ps: duration_ns * 1_000,
            warmup_ps: warmup_ns * 1_000,
            shards: crate::shard::plan_shards(net, policy, &cfg),
            engine: None,
            chaos: None,
        })
    }

    /// Arms (or clears) a chaos fault for the *next* point only — the
    /// supervisor re-decides per (point, attempt).
    pub(crate) fn set_chaos(&mut self, chaos: Option<EngineChaos>) {
        self.chaos = chaos;
    }

    /// Runs point `idx` at `load`; the result depends only on
    /// `(cfg, idx, load)`, never on previously run points.
    pub(crate) fn run_point(
        &mut self,
        idx: usize,
        load: f64,
        probe: Option<ProbeConfig>,
        trace: Option<TraceConfig>,
        ledger: Option<LedgerConfig>,
    ) -> (
        SyntheticStats,
        Option<TelemetryReport>,
        Option<EngineTrace>,
        Option<EngineLedger>,
    ) {
        if self.shards > 1 {
            // The sharded runner re-derives the run's randomness from
            // `cfg.seed`; substituting the point seed reproduces
            // exactly the stream the serial branch below would use.
            let mut pcfg = self.cfg;
            pcfg.seed = point_seed(self.cfg.seed, idx);
            if self.chaos.is_some() {
                pcfg.chaos = self.chaos;
            }
            return crate::shard::run_sharded_inner(
                self.net,
                self.policy,
                self.pattern,
                None,
                load,
                self.end_ps,
                self.warmup_ps,
                pcfg,
                probe,
                trace,
                ledger,
            )
            .expect("point parameters were validated in try_new");
        }
        let mut rng = SmallRng::seed_from_u64(point_seed(self.cfg.seed, idx));
        let sources = synthetic_sources(self.net, self.pattern, load, self.end_ps, &self.cfg, &mut rng);
        let engine = match &mut self.engine {
            Some(e) => {
                e.reset(sources, self.warmup_ps, rng);
                e
            }
            None => self.engine.insert(Engine::new(
                self.net,
                self.policy,
                self.cfg,
                sources,
                self.warmup_ps,
                rng,
            )),
        };
        engine.set_chaos(self.chaos.or(self.cfg.chaos));
        if let Some(p) = probe {
            engine.attach_probe(p);
        }
        if let Some(t) = trace {
            engine.attach_trace(t);
        }
        if let Some(l) = ledger {
            engine.attach_ledger(l);
        }
        let (stats, report) = engine.run_synthetic_to(load, self.end_ps);
        let tr = engine.take_trace();
        let led = engine.take_ledger();
        (stats, report, tr, led)
    }

    /// [`PointRunner::run_point`] behind `catch_unwind`: a panicking
    /// point comes back as `Err(panic message)` instead of unwinding
    /// into (and killing) the sweep. The reusable engine is dropped on
    /// the way out — it may hold arbitrary torn state — so the next
    /// point rebuilds from scratch.
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_point_isolated(
        &mut self,
        idx: usize,
        load: f64,
        probe: Option<ProbeConfig>,
        trace: Option<TraceConfig>,
        ledger: Option<LedgerConfig>,
    ) -> Result<
        (
            SyntheticStats,
            Option<TelemetryReport>,
            Option<EngineTrace>,
            Option<EngineLedger>,
        ),
        String,
    > {
        let obs_t0 = crate::obs::enabled().then(std::time::Instant::now);
        let result = with_quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_point(idx, load, probe, trace, ledger)
            }))
        });
        let result = match result {
            Ok(out) => Ok(out),
            Err(payload) => {
                self.engine = None;
                Err(panic_message(payload.as_ref()))
            }
        };
        // Observer-only: live progress for every attempt, after the
        // result is fully formed — nothing here can influence it.
        if let Some(t0) = obs_t0 {
            let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            let events = crate::obs::take_run_events();
            match &result {
                Ok((stats, ..)) => crate::obs::point_run(
                    idx,
                    load,
                    wall_ms,
                    events,
                    stats.throughput,
                    stats.deadlocked,
                    stats.exhausted,
                ),
                Err(msg) => crate::obs::point_panic(idx, load, wall_ms, msg),
            }
        }
        result
    }
}

/// Simulates `net` at each offered load in `loads`, returning one curve
/// point per load plus any [`SweepNotice`]s raised.
///
/// If a point wedges, the remaining (higher) loads are not simulated: a
/// deadlocked network stays deadlocked under more pressure, and each
/// wedged point would otherwise burn a full simulated horizon. Skipped
/// points carry [`SyntheticStats::deadlocked_stub`] so curves keep one
/// entry per requested load.
pub fn load_sweep_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> SweepOutcome {
    // One static pass covers every load point: verification is
    // load-independent, so the per-point configs run with it disabled.
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return rejected_outcome(loads, e),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return rejected_outcome(loads, e),
    };
    sweep_impl(loads, |idx, load, first_wedge| {
        if first_wedge.is_some() {
            return stub_point(load);
        }
        match runner.run_point_isolated(idx, load, None, None, None) {
            Ok((stats, ..)) => (
                SweepPoint {
                    load,
                    stats,
                    telemetry: None,
                },
                PointFate::Simulated,
            ),
            Err(msg) => panicked_point(load, msg),
        }
    })
}

/// [`load_sweep_collect`], printing notices to stderr and returning the
/// bare points — the convenient form for interactive callers.
pub fn load_sweep(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> Vec<SweepPoint> {
    let out = load_sweep_collect(net, policy, pattern, loads, duration_ns, warmup_ns, cfg);
    out.print_notices();
    out.points
}

/// [`load_sweep_collect`] with an observability probe attached to every
/// simulated point; each [`SweepPoint`] carries its [`TelemetrySummary`].
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_probed_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> SweepOutcome {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return rejected_outcome(loads, e),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return rejected_outcome(loads, e),
    };
    sweep_impl(loads, |idx, load, first_wedge| {
        if first_wedge.is_some() {
            return stub_point(load);
        }
        match runner.run_point_isolated(idx, load, Some(probe), None, None) {
            Ok((stats, report, _, _)) => (
                SweepPoint {
                    load,
                    stats,
                    telemetry: Some(report.expect("probe was attached").summary()),
                },
                PointFate::Simulated,
            ),
            Err(msg) => panicked_point(load, msg),
        }
    })
}

/// [`load_sweep`] with an observability probe attached to every simulated
/// point; each [`SweepPoint`] carries its [`TelemetrySummary`].
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_probed(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> Vec<SweepPoint> {
    let out =
        load_sweep_probed_collect(net, policy, pattern, loads, duration_ns, warmup_ns, cfg, probe);
    out.print_notices();
    out.points
}

/// [`load_sweep_collect`] with a [`TraceConfig`] attached to every
/// simulated point. Returns the outcome plus one [`PointTrace`] per
/// *simulated* point, in index order — wedge-stubbed points have no
/// trace, exactly like the parallel variant, so serial and parallel
/// trace files stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_traced_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    trace: TraceConfig,
) -> (SweepOutcome, Vec<PointTrace>) {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut traces = Vec::new();
    let out = sweep_impl(loads, |idx, load, first_wedge| {
        if first_wedge.is_some() {
            return stub_point(load);
        }
        match runner.run_point_isolated(idx, load, None, Some(trace), None) {
            Ok((stats, _, tr, _)) => {
                traces.push(PointTrace {
                    index: idx,
                    load,
                    trace: tr.expect("trace was attached"),
                });
                (
                    SweepPoint {
                        load,
                        stats,
                        telemetry: None,
                    },
                    PointFate::Simulated,
                )
            }
            // A panicked point has no trace — same as the parallel
            // variant, which drops traces of stubbed points.
            Err(msg) => panicked_point(load, msg),
        }
    });
    (out, traces)
}

/// [`load_sweep_collect`] with a [`LedgerConfig`] attached to every
/// simulated point. Returns the outcome plus one [`PointLedger`] per
/// *simulated* point, in index order — wedge-stubbed points have no
/// ledger, exactly like the parallel variant, so serial and parallel
/// ledger serializations stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_ledgered_collect(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    loads: &[f64],
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    ledger: LedgerConfig,
) -> (SweepOutcome, Vec<PointLedger>) {
    let cfg = match crate::engine::try_preflight_once(net, policy, cfg) {
        Ok(cfg) => cfg,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut runner = match PointRunner::try_new(net, policy, pattern, cfg, duration_ns, warmup_ns) {
        Ok(r) => r,
        Err(e) => return (rejected_outcome(loads, e), Vec::new()),
    };
    let mut ledgers = Vec::new();
    let out = sweep_impl(loads, |idx, load, first_wedge| {
        if first_wedge.is_some() {
            return stub_point(load);
        }
        match runner.run_point_isolated(idx, load, None, None, Some(ledger)) {
            Ok((stats, _, _, led)) => {
                ledgers.push(PointLedger {
                    index: idx,
                    load,
                    ledger: led.expect("ledger was attached"),
                });
                (
                    SweepPoint {
                        load,
                        stats,
                        telemetry: None,
                    },
                    PointFate::Simulated,
                )
            }
            Err(msg) => panicked_point(load, msg),
        }
    });
    (out, ledgers)
}

/// Shared early-abort loop: `point` receives the index, the load and,
/// once any point has wedged, the load that first wedged, and reports
/// how the point ended via its [`PointFate`]. Only a genuinely
/// simulated wedge arms the early-abort; panicked and budget-exhausted
/// points raise their coded notice and let the sweep continue.
fn sweep_impl(
    loads: &[f64],
    mut point: impl FnMut(usize, f64, Option<f64>) -> (SweepPoint, PointFate),
) -> SweepOutcome {
    crate::obs::sweep_started(loads.len());
    let mut acc = crate::obs::SweepAccounting::default();
    let mut points = Vec::with_capacity(loads.len());
    let mut notices = Vec::new();
    let mut first_wedge: Option<f64> = None;
    for (idx, &load) in loads.iter().enumerate() {
        let (p, fate) = point(idx, load, first_wedge);
        match fate {
            PointFate::Simulated => {
                // `deadlocked` and `exhausted` are mutually exclusive: a
                // budget abort returns before the wedge check runs.
                if p.stats.exhausted {
                    acc.exhausted += 1;
                    notices.push(SweepNotice::exhausted(idx, load));
                    crate::obs::notice(notices.last().unwrap());
                } else {
                    acc.completed += 1;
                }
                if p.stats.deadlocked && first_wedge.is_none() {
                    first_wedge = Some(load);
                    notices.push(SweepNotice::wedged(idx, load));
                    crate::obs::notice(notices.last().unwrap());
                }
            }
            PointFate::Skipped => acc.stubbed += 1,
            PointFate::Panicked(msg) => {
                acc.panicked += 1;
                notices.push(SweepNotice::panicked(idx, load, &msg));
                crate::obs::notice(notices.last().unwrap());
            }
        }
        points.push(p);
    }
    crate::obs::sweep_finished(&acc);
    SweepOutcome { points, notices }
}

/// The stub-or-simulate skeleton every serial sweep closure shares:
/// stubs once a lower load wedged, otherwise runs the point isolated
/// and maps a panic to its stub + fate.
fn stub_point(load: f64) -> (SweepPoint, PointFate) {
    (
        SweepPoint {
            load,
            stats: SyntheticStats::deadlocked_stub(load),
            telemetry: None,
        },
        PointFate::Skipped,
    )
}

fn panicked_point(load: f64, msg: String) -> (SweepPoint, PointFate) {
    (
        SweepPoint {
            load,
            stats: SyntheticStats::panicked_stub(load),
            telemetry: None,
        },
        PointFate::Panicked(msg),
    )
}

/// The standard load grid used by the figure harness: `steps` evenly
/// spaced points from `1/steps` to 100 % of link bandwidth (so
/// `load_grid(20)` is the paper's 5 %–100 % axis, while `load_grid(10)`
/// starts at 10 %). For a grid whose floor is decoupled from its
/// resolution, use [`load_grid_from`].
pub fn load_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    (1..=steps)
        .map(|i| i as f64 / steps as f64)
        .collect()
}

/// `steps` evenly spaced offered loads from `start` to 100 % inclusive —
/// a sweep axis whose floor does not move when the resolution changes.
pub fn load_grid_from(start: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    assert!(
        start > 0.0 && start < 1.0,
        "start must be in (0, 1), got {start}"
    );
    (0..steps)
        .map(|i| start + (1.0 - start) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// Estimates the saturation throughput: the accepted throughput when
/// offering full load (the plateau of the throughput curve).
pub fn saturation_throughput(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &SyntheticPattern,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> f64 {
    crate::engine::run_synthetic(net, policy, pattern, 1.0, duration_ns, warmup_ns, cfg).throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = load_grid(10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_from_pins_both_ends() {
        let g = load_grid_from(0.05, 20);
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
        // Doubling the resolution keeps the floor (unlike load_grid).
        let fine = load_grid_from(0.05, 39);
        assert!((fine[0] - 0.05).abs() < 1e-12);
        assert!((fine[38] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_seeds_spread_and_are_index_pure() {
        let base = SimConfig::default().seed;
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(base, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_eq!(a, point_seed(base, i), "pure function of (base, idx)");
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "adjacent indices must not collide");
            }
        }
        assert_ne!(point_seed(1, 0), point_seed(2, 0), "base seed must matter");
    }

    #[test]
    fn early_abort_stubs_higher_loads_and_raises_one_notice() {
        // Simulate the sweep loop with a synthetic "wedges at 0.5" run.
        let mut simulated = Vec::new();
        let out = sweep_impl(&[0.25, 0.5, 0.75, 1.0], |_, load, first_wedge| {
            if first_wedge.is_some() {
                return stub_point(load);
            }
            simulated.push(load);
            let mut stats = SyntheticStats::deadlocked_stub(load);
            stats.deadlocked = load >= 0.5;
            stats.throughput = load;
            (
                SweepPoint {
                    load,
                    stats,
                    telemetry: None,
                },
                PointFate::Simulated,
            )
        });
        assert_eq!(simulated, vec![0.25, 0.5]);
        let points = &out.points;
        assert_eq!(points.len(), 4);
        assert!(!points[0].stats.deadlocked);
        assert!(points[1].stats.deadlocked);
        assert!(points[2].stats.deadlocked && points[2].stats.throughput == 0.0);
        assert!(points[3].stats.deadlocked && points[3].stats.delivered_packets == 0);
        assert_eq!(out.notices.len(), 1);
        assert_eq!(out.notices[0].code, "wedged");
        assert_eq!(out.notices[0].index, 1);
        assert!((out.notices[0].load - 0.5).abs() < 1e-12);
        assert!(out.notices[0].render().contains("wedged at offered load 0.500"));
    }

    #[test]
    fn panicked_point_raises_coded_notice_without_aborting_the_sweep() {
        let mut simulated = Vec::new();
        let out = sweep_impl(&[0.25, 0.5, 0.75], |_, load, first_wedge| {
            assert!(first_wedge.is_none(), "a panic must not arm early-abort");
            simulated.push(load);
            if (load - 0.5).abs() < 1e-12 {
                return panicked_point(load, "boom".to_string());
            }
            let mut stats = SyntheticStats::deadlocked_stub(load);
            stats.deadlocked = false;
            (
                SweepPoint {
                    load,
                    stats,
                    telemetry: None,
                },
                PointFate::Simulated,
            )
        });
        // Every load simulated: the panic at 0.5 did not stub 0.75.
        assert_eq!(simulated, vec![0.25, 0.5, 0.75]);
        assert!(out.points[1].stats.deadlocked, "panicked stub is unusable");
        assert!(!out.points[2].stats.deadlocked);
        assert_eq!(out.notices.len(), 1);
        assert_eq!(out.notices[0].code, "panicked");
        assert_eq!(out.notices[0].index, 1);
        assert!(out.notices[0].message.contains("boom"));
    }

    #[test]
    fn exhausted_point_keeps_partial_stats_and_raises_coded_notice() {
        let out = sweep_impl(&[0.25, 0.5], |_, load, _| {
            let mut stats = SyntheticStats::deadlocked_stub(load);
            stats.deadlocked = false;
            stats.exhausted = (load - 0.5).abs() < 1e-12;
            stats.throughput = load * 0.9;
            (
                SweepPoint {
                    load,
                    stats,
                    telemetry: None,
                },
                PointFate::Simulated,
            )
        });
        assert!(out.points[1].stats.exhausted);
        assert!(out.points[1].stats.throughput > 0.0, "partial stats kept");
        assert_eq!(out.notices.len(), 1);
        assert_eq!(out.notices[0].code, "exhausted");
        assert_eq!(out.notices[0].index, 1);
    }

    #[test]
    fn run_point_isolated_catches_chaos_panics_and_recovers() {
        use crate::config::{ChaosKind, EngineChaos};
        use d2net_routing::Algorithm;
        use d2net_topo::slim_fly;
        use d2net_topo::SlimFlyP;

        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let pattern = SyntheticPattern::Uniform;
        let cfg = SimConfig::default();
        let mut runner =
            PointRunner::try_new(&net, &policy, &pattern, cfg, 2_000, 200).unwrap();

        // Arm a panic a few hundred events in; the point must come back
        // as Err, not kill the process.
        runner.set_chaos(Some(EngineChaos {
            kind: ChaosKind::Panic,
            after_events: 300,
        }));
        let err = runner
            .run_point_isolated(0, 0.3, None, None, None)
            .unwrap_err();
        assert!(err.contains("chaos: injected panic"), "{err}");

        // Disarm: the very next point on the same runner must simulate
        // normally (the torn engine was dropped and rebuilt).
        runner.set_chaos(None);
        let (stats, ..) = runner.run_point_isolated(1, 0.3, None, None, None).unwrap();
        assert!(!stats.deadlocked);
        assert!(stats.delivered_packets > 0);

        // And it must be byte-identical to a fresh runner that never
        // saw the panic — isolation cannot leak into later points.
        let mut clean = PointRunner::try_new(&net, &policy, &pattern, cfg, 2_000, 200).unwrap();
        let (clean_stats, ..) = clean.run_point_isolated(1, 0.3, None, None, None).unwrap();
        assert_eq!(stats, clean_stats);
    }
}
