//! Intra-run sharded simulation: conservative time-window engine
//! parallelism.
//!
//! Routers are partitioned into `k` contiguous shards, each a full
//! [`Engine`] restricted to its own router range
//! (`Engine::build_shard`). A coordinator thread runs the shards in
//! lock-step **conservative windows**: every cross-router interaction
//! (a packet's link traversal, a credit's return trip) takes at least
//! one link latency `L`, so if `T` is the global minimum timestamp over
//! all shard queues and undelivered mailbox items, nothing a sibling
//! emits at `t ≥ T` can influence another shard before `T + L` — every
//! shard may drain events with `t < T + L` without synchronizing.
//!
//! Cross-shard transfers are staged into per-shard outboxes during a
//! window and routed to their owning shards at the barrier. The sender
//! assigns each staged event the exact `(time, key)` it would have
//! carried serially; keys are globally unique (per-router lanes, see
//! `Engine::next_key`), so each receiving queue's `(time, key)` order
//! reproduces the serial schedule byte-for-byte — the same total-order
//! argument that lets the calendar and heap queues cross-check today.
//! Mid-run faults ([`EngineFault`]) are applied at barriers; the
//! coordinator never opens a window across a fault time.
//!
//! Every observable output — [`SyntheticStats`], telemetry reports,
//! traces, ledgers, and the manifests derived from them — is
//! byte-identical to the serial engine's for every shard count. The
//! window protocol, the mailbox merge-ordering proof sketch, and the
//! shard-layout decisions are documented in DESIGN.md §14.

use crate::config::{EventQueueKind, SimConfig};
use crate::engine::{
    deadlock_forensics_sharded, engine_faults, partition_report_sharded, resolve_fault_policies,
    synthetic_sources, try_preflight_once, Engine, OutEv,
};
use crate::fault::FaultSchedule;
use crate::ledger::{EngineLedger, LedgerConfig};
use crate::stats::SyntheticStats;
use crate::telemetry::{ProbeConfig, TelemetryReport};
use crate::trace::{EngineTrace, TraceConfig};
use d2net_routing::{Algorithm, RoutePolicy};
use d2net_topo::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::mpsc;

/// Below this router count the auto heuristic stays serial: window
/// barriers cost more than they save on paper-scale instances, while
/// CORAL-scale networks (hundreds to thousands of routers) are where
/// sharding pays.
const AUTO_MIN_ROUTERS: u32 = 128;

/// Ceiling on the auto-selected shard count; barrier traffic grows with
/// the shard count while per-shard work shrinks, and measurements in
/// `bench_engine` show diminishing returns past this point.
const AUTO_MAX_SHARDS: usize = 8;

/// The requested shard count before correctness clamps: an explicit
/// [`SimConfig::shards`] wins, then the `D2NET_SHARDS` environment
/// variable, then the machine's parallelism (capped). The flag says
/// whether the count was an explicit request (which skips the
/// small-network heuristic) or auto.
fn requested_shards(cfg: &SimConfig) -> (usize, bool) {
    if cfg.shards > 0 {
        return (cfg.shards as usize, true);
    }
    if let Some(n) = crate::envcfg::env_positive("D2NET_SHARDS") {
        return (n as usize, true);
    }
    let auto = std::thread::available_parallelism()
        .map(|n| n.get().min(AUTO_MAX_SHARDS))
        .unwrap_or(1);
    (auto, false)
}

/// The shard count a synthetic run over `net` under `policy`/`cfg` will
/// actually use (`1` = serial). The parallel sweeps call this to split
/// one thread budget between point-level and shard-level parallelism.
pub fn plan_shards(net: &Network, policy: &RoutePolicy, cfg: &SimConfig) -> usize {
    effective_shards(net, policy, cfg, false)
}

fn effective_shards(
    net: &Network,
    policy: &RoutePolicy,
    cfg: &SimConfig,
    fault_at_zero: bool,
) -> usize {
    let (k, explicit) = requested_shards(cfg);
    let mut k = k.min(net.num_routers() as usize).max(1);
    if !explicit && net.num_routers() < AUTO_MIN_ROUTERS {
        k = 1;
    }
    // The heap queue stays the unsharded reference implementation the
    // determinism suite cross-checks against.
    if cfg.event_queue == EventQueueKind::Heap {
        k = 1;
    }
    // Global UGAL reads *remote* output occupancies at injection time;
    // a shard only maintains its own routers' buffers, so the remote
    // view would be stale and diverge from serial. (Local UGAL — the
    // paper's variant — reads only the injection router's buffers.)
    if matches!(policy.algorithm(), Algorithm::UgalG { .. }) {
        k = 1;
    }
    // A fault at t = 0 shares its timestamp with the build-time
    // NodeWake events, which serial orders *before* it by formula key;
    // the barrier protocol applies faults before a window, so it
    // cannot reproduce that interleaving. Faults at any t > 0 only
    // ever share a timestamp with runtime-keyed events, which sort
    // after the fault exactly as the barrier applies them.
    if fault_at_zero {
        k = 1;
    }
    k
}

/// Contiguous router ranges `[lo, hi)` per shard, sizes differing by at
/// most one. Requires `1 ≤ k ≤ num_routers`; every range is non-empty.
fn shard_bounds(num_routers: u32, k: usize) -> Vec<(u32, u32)> {
    let k32 = k as u32;
    let base = num_routers / k32;
    let rem = num_routers % k32;
    let mut bounds = Vec::with_capacity(k);
    let mut lo = 0u32;
    for i in 0..k32 {
        let size = base + u32::from(i < rem);
        bounds.push((lo, lo + size));
        lo += size;
    }
    debug_assert_eq!(lo, num_routers);
    bounds
}

/// A mailbox item tagged with its destination shard.
type Routed = (usize, (u64, u64, OutEv));

/// Coordinator → shard commands. Each of the first two is answered by
/// exactly one [`Reply`].
enum Cmd {
    /// Deliver `inbox` into the shard's queue, then drain every event
    /// with `t < until`.
    Window {
        until: u64,
        inbox: Vec<(u64, u64, OutEv)>,
    },
    /// Apply fault-schedule entry `i` at this barrier — the sharded
    /// equivalent of popping the serial `Ev::LinkFail`.
    Fault(usize),
    /// Final bookkeeping (clock to the horizon if events remained
    /// beyond it, probe flush); the worker then returns its engine.
    /// `inbox` holds mailbox items still undelivered at the break —
    /// arrivals beyond the horizon. Serial keeps the matching events
    /// (and their trace flight records) queued past `end_ps`, so they
    /// are delivered rather than dropped: a migrant flight's record
    /// travels inside its `OutEv::Arrive` and would otherwise vanish
    /// from the merged trace.
    Finish {
        end_ps: u64,
        at_horizon: bool,
        inbox: Vec<(u64, u64, OutEv)>,
    },
}

/// Shard → coordinator barrier reply: the cross-shard events staged
/// during the window (already routed to their destination shards) and
/// the shard's next queued timestamp.
struct Reply {
    shard: usize,
    outbox: Vec<Routed>,
    min_peek: Option<u64>,
    /// The shard's run budget tripped inside the window (see
    /// [`crate::RunBudget`]): the coordinator stops opening windows and
    /// finalizes the partial run as exhausted.
    exhausted: bool,
}

fn shard_worker<'a>(
    mut eng: Engine<'a>,
    shard: usize,
    bounds: &[(u32, u32)],
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) -> Engine<'a> {
    for cmd in rx {
        match cmd {
            Cmd::Window { until, inbox } => {
                for (t, key, ev) in inbox {
                    eng.deliver(t, key, ev);
                }
                eng.run_window(until);
            }
            Cmd::Fault(i) => eng.apply_fault(i),
            Cmd::Finish {
                end_ps,
                at_horizon,
                inbox,
            } => {
                for (t, key, ev) in inbox {
                    eng.deliver(t, key, ev);
                }
                if at_horizon {
                    eng.force_now(end_ps);
                }
                eng.flush_probe_to(end_ps);
                return eng;
            }
        }
        let outbox = eng
            .take_outbox()
            .into_iter()
            .map(|(t, key, ev)| {
                let dst = Engine::owner_shard(bounds, eng.out_ev_router(&ev));
                (dst, (t, key, ev))
            })
            .collect();
        let min_peek = eng.min_peek();
        let _ = tx.send(Reply {
            shard,
            outbox,
            min_peek,
            exhausted: eng.budget_exhausted(),
        });
    }
    eng
}

/// Waits for one [`Reply`] per shard, refreshing each shard's queue
/// minimum and routing its staged events into the destination inboxes.
fn collect_replies(
    rx: &mpsc::Receiver<Reply>,
    k: usize,
    min_peeks: &mut [Option<u64>],
    inboxes: &mut [Vec<(u64, u64, OutEv)>],
) -> bool {
    let mut exhausted = false;
    for _ in 0..k {
        let r = rx.recv().expect("shard worker alive");
        min_peeks[r.shard] = r.min_peek;
        exhausted |= r.exhausted;
        for (dst, item) in r.outbox {
            inboxes[dst].push(item);
        }
    }
    exhausted
}

/// The shared synthetic-run core: resolves the shard count, falls back
/// to the serial engine at `k = 1`, and otherwise runs the
/// window-barrier protocol, absorbing every shard into one engine for
/// the ordinary finalization path. Called by every
/// `run_synthetic_sharded*` entry point and the sweeps' `PointRunner`.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub(crate) fn run_sharded_inner(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    schedule: Option<&FaultSchedule>,
    load: f64,
    end_ps: u64,
    warmup_ps: u64,
    cfg: SimConfig,
    probe: Option<ProbeConfig>,
    trace: Option<TraceConfig>,
    ledger: Option<LedgerConfig>,
) -> Result<
    (
        SyntheticStats,
        Option<TelemetryReport>,
        Option<EngineTrace>,
        Option<EngineLedger>,
    ),
    String,
> {
    let policies = schedule
        .map(|s| resolve_fault_policies(net, policy, s))
        .unwrap_or_default();
    let fault_at_zero = schedule.is_some_and(|s| s.events().iter().any(|e| e.t_ns == 0));
    let k = effective_shards(net, policy, &cfg, fault_at_zero);

    if k <= 1 {
        // Serial fallback: identical to the unsharded entry points.
        let faults = schedule
            .map(|s| engine_faults(net, s, &policies))
            .unwrap_or_default();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let sources = synthetic_sources(net, pattern, load, end_ps, &cfg, &mut rng);
        let mut eng = Engine::try_new_faulted(net, policy, cfg, sources, warmup_ps, rng, faults)?;
        if let Some(p) = probe {
            eng.attach_probe(p);
        }
        if let Some(t) = trace {
            eng.attach_trace(t);
        }
        if let Some(l) = ledger {
            eng.attach_ledger(l);
        }
        let (stats, tel) = eng.run_synthetic_to(load, end_ps);
        return Ok((stats, tel, eng.take_trace(), eng.take_ledger()));
    }

    // The static preflight pass is shard-independent; run it once here
    // rather than once per shard build.
    let cfg = try_preflight_once(net, policy, cfg)?;
    let bounds = shard_bounds(net.num_routers(), k);
    let fault_times: Vec<u64> = schedule
        .map(|s| s.events().iter().map(|e| e.t_ns * 1_000).collect())
        .unwrap_or_default();

    let mut engines: Vec<Engine> = Vec::with_capacity(k);
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        // Every shard derives the run's randomness from an identically
        // seeded master RNG and an identical source vector, so a
        // node's stochastic stream is the same no matter which shard
        // owns it (see `derive_node_rngs`).
        let faults = schedule
            .map(|s| engine_faults(net, s, &policies))
            .unwrap_or_default();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let sources = synthetic_sources(net, pattern, load, end_ps, &cfg, &mut rng);
        // An armed chaos fault fires once per run, not once per shard:
        // only shard 0 carries it (its fire point counts that shard's
        // own pops, so sharded chaos timing differs from serial — chaos
        // runs never claim byte-identity, see DESIGN.md §15).
        let mut scfg = cfg;
        if i != 0 {
            scfg.chaos = None;
        }
        let mut eng =
            Engine::build_shard(net, policy, scfg, sources, warmup_ps, rng, faults, lo, hi, i == 0)?;
        if let Some(p) = probe {
            eng.attach_probe(p);
        }
        if let Some(t) = trace {
            eng.attach_trace(t);
        }
        if let Some(l) = ledger {
            eng.attach_ledger(l);
        }
        engines.push(eng);
    }

    let link_ps = cfg.link_ps();
    let mut min_peeks: Vec<Option<u64>> = engines.iter_mut().map(|e| e.min_peek()).collect();
    let mut inboxes: Vec<Vec<(u64, u64, OutEv)>> = (0..k).map(|_| Vec::new()).collect();
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let mut at_horizon = false;
    let mut drained = false;

    let mut engines: Vec<Engine> = std::thread::scope(|s| {
        let bounds = &bounds;
        let mut cmd_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for (i, eng) in engines.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(tx);
            let reply_tx = reply_tx.clone();
            handles.push(s.spawn(move || shard_worker(eng, i, bounds, rx, reply_tx)));
        }
        let mut next_fault = 0usize;
        loop {
            let queue_min = min_peeks.iter().flatten().copied().min();
            let inbox_min = inboxes
                .iter()
                .flat_map(|b| b.iter().map(|&(t, _, _)| t))
                .min();
            let global_min = match (queue_min, inbox_min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            // Apply every fault due at or before the next event, in
            // schedule order. Faults beyond the horizon stay pending,
            // exactly as their serial `Ev::LinkFail` would stay queued.
            if next_fault < fault_times.len()
                && fault_times[next_fault] <= end_ps
                && global_min.is_none_or(|m| fault_times[next_fault] <= m)
            {
                for tx in &cmd_txs {
                    tx.send(Cmd::Fault(next_fault)).expect("shard worker alive");
                }
                let _ = collect_replies(&reply_rx, k, &mut min_peeks, &mut inboxes);
                next_fault += 1;
                continue;
            }
            let Some(m) = global_min else {
                // All queues and mailboxes are empty. Serial would
                // still hold any beyond-horizon LinkFail events, so it
                // only counts as drained when none are pending.
                if next_fault < fault_times.len() {
                    at_horizon = true;
                } else {
                    drained = true;
                }
                break;
            };
            if m > end_ps {
                at_horizon = true;
                break;
            }
            // One conservative window: everything below the global
            // minimum plus one link latency is causally sealed. Clamp
            // to the horizon (serial processes t == end_ps, stops
            // beyond) and to the next fault time.
            let mut until = (m + link_ps).min(end_ps + 1);
            if next_fault < fault_times.len() {
                until = until.min(fault_times[next_fault]);
            }
            for (i, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Window {
                    until,
                    inbox: std::mem::take(&mut inboxes[i]),
                })
                .expect("shard worker alive");
            }
            if collect_replies(&reply_rx, k, &mut min_peeks, &mut inboxes) {
                // A shard's run budget tripped mid-window: stop opening
                // windows and finalize the partial run — the absorbed
                // engine's `exhausted` flag marks the stats.
                at_horizon = true;
                break;
            }
        }
        for (i, tx) in cmd_txs.iter().enumerate() {
            tx.send(Cmd::Finish {
                end_ps,
                at_horizon,
                inbox: std::mem::take(&mut inboxes[i]),
            })
            .expect("shard worker alive");
        }
        drop(cmd_txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Wedge check over global counters, mirroring the serial loop's
    // drained-queue test.
    let (created, done) = engines.iter().fold((0u64, 0u64), |(c, d), e| {
        let (ec, ed) = e.wedge_counts();
        (c + ec, d + ed)
    });
    let wedged = drained && created > done;
    let forensics = if wedged {
        let refs: Vec<&Engine> = engines.iter().collect();
        Some(
            deadlock_forensics_sharded(&refs)
                .unwrap_or_else(|| partition_report_sharded(&refs)),
        )
    } else {
        None
    };

    let (first, rest) = engines.split_first_mut().expect("k >= 2 shards");
    for other in rest.iter_mut() {
        first.absorb_shard(other);
    }
    let telemetry = first.take_probe_report_with(forensics);
    let stats = first.synthetic_stats(load, end_ps, wedged);
    Ok((stats, telemetry, first.take_trace(), first.take_ledger()))
}

/// Validates the measurement window and converts to engine units —
/// the public entry points' shared prologue.
fn horizon(duration_ns: u64, warmup_ns: u64) -> Result<(u64, u64), String> {
    d2net_verify::invariant::warmup_within(warmup_ns, duration_ns)?;
    Ok((duration_ns * 1_000, warmup_ns * 1_000))
}

/// Sharded equivalent of [`crate::run_synthetic`]: identical output for
/// every shard count (see the module docs), faster wall-clock on large
/// networks. The shard count comes from [`SimConfig::shards`] /
/// `D2NET_SHARDS` / the auto heuristic, via [`plan_shards`].
pub fn run_synthetic_sharded(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> SyntheticStats {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns).unwrap_or_else(|e| panic!("{e}"));
    run_sharded_inner(
        net, policy, pattern, None, load, end_ps, warmup_ps, cfg, None, None, None,
    )
    .unwrap_or_else(|e| panic!("{e}"))
    .0
}

/// Sharded equivalent of [`crate::run_synthetic_probed`].
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_sharded_probed(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> (SyntheticStats, TelemetryReport) {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns).unwrap_or_else(|e| panic!("{e}"));
    let (stats, tel, _, _) = run_sharded_inner(
        net,
        policy,
        pattern,
        None,
        load,
        end_ps,
        warmup_ps,
        cfg,
        Some(probe),
        None,
        None,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    (stats, tel.expect("probe was attached"))
}

/// Sharded equivalent of [`crate::run_synthetic_traced`].
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_sharded_traced(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    tcfg: TraceConfig,
) -> (SyntheticStats, EngineTrace) {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns).unwrap_or_else(|e| panic!("{e}"));
    let (stats, _, trace, _) = run_sharded_inner(
        net,
        policy,
        pattern,
        None,
        load,
        end_ps,
        warmup_ps,
        cfg,
        None,
        Some(tcfg),
        None,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    (stats, trace.expect("trace was attached"))
}

/// Sharded equivalent of [`crate::run_synthetic_ledgered`].
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_sharded_ledgered(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    lcfg: LedgerConfig,
) -> (SyntheticStats, EngineLedger) {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns).unwrap_or_else(|e| panic!("{e}"));
    let (stats, _, _, ledger) = run_sharded_inner(
        net,
        policy,
        pattern,
        None,
        load,
        end_ps,
        warmup_ps,
        cfg,
        None,
        None,
        Some(lcfg),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    (stats, ledger.expect("ledger was attached"))
}

/// Sharded equivalent of [`crate::run_synthetic_faulted`]. The fault
/// schedule threads through window barriers; a schedule with an event
/// at `t = 0` falls back to serial (see [`plan_shards`]).
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_sharded_faulted(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    schedule: &FaultSchedule,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
) -> Result<SyntheticStats, String> {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns)?;
    run_sharded_inner(
        net,
        policy,
        pattern,
        Some(schedule),
        load,
        end_ps,
        warmup_ps,
        cfg,
        None,
        None,
        None,
    )
    .map(|(stats, _, _, _)| stats)
}

/// Sharded equivalent of [`crate::run_synthetic_faulted_probed`].
#[allow(clippy::too_many_arguments)]
pub fn run_synthetic_sharded_faulted_probed(
    net: &Network,
    policy: &RoutePolicy,
    pattern: &d2net_traffic::SyntheticPattern,
    schedule: &FaultSchedule,
    load: f64,
    duration_ns: u64,
    warmup_ns: u64,
    cfg: SimConfig,
    probe: ProbeConfig,
) -> Result<(SyntheticStats, TelemetryReport), String> {
    let (end_ps, warmup_ps) = horizon(duration_ns, warmup_ns)?;
    run_sharded_inner(
        net,
        policy,
        pattern,
        Some(schedule),
        load,
        end_ps,
        warmup_ps,
        cfg,
        Some(probe),
        None,
        None,
    )
    .map(|(stats, tel, _, _)| (stats, tel.expect("probe was attached")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_synthetic;
    use d2net_topo::slim_fly;
    use d2net_traffic::SyntheticPattern;

    fn cfg_with(shards: u32) -> SimConfig {
        SimConfig {
            shards,
            ..SimConfig::default()
        }
    }

    #[test]
    fn bounds_cover_router_range_evenly() {
        assert_eq!(shard_bounds(10, 1), vec![(0, 10)]);
        assert_eq!(shard_bounds(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(shard_bounds(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        for (n, k) in [(50u32, 7usize), (338, 8), (3, 2)] {
            let b = shard_bounds(n, k);
            assert_eq!(b.len(), k);
            assert_eq!(b[0].0, 0);
            assert_eq!(b.last().unwrap().1, n);
            assert!(b.iter().all(|&(lo, hi)| lo < hi));
            assert!(b.windows(2).all(|w| w[0].1 == w[1].0));
        }
    }

    #[test]
    fn sharded_matches_serial_stats() {
        let net = slim_fly(5, d2net_topo::SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let pattern = SyntheticPattern::Uniform;
        let serial = run_synthetic(&net, &policy, &pattern, 0.3, 6_000, 1_000, cfg_with(1));
        for k in [2u32, 3, 5] {
            let sharded =
                run_synthetic_sharded(&net, &policy, &pattern, 0.3, 6_000, 1_000, cfg_with(k));
            assert_eq!(sharded, serial, "shard count {k} diverged");
        }
    }

    #[test]
    fn explicit_shards_override_heuristics_but_not_correctness_clamps() {
        let net = slim_fly(5, d2net_topo::SlimFlyP::Floor); // 50 routers
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        // Explicit request beats the small-network heuristic.
        assert_eq!(plan_shards(&net, &policy, &cfg_with(4)), 4);
        // Requests beyond the router count clamp down.
        assert_eq!(plan_shards(&net, &policy, &cfg_with(999)), 50);
        // The heap queue stays serial regardless.
        let heap = SimConfig {
            event_queue: EventQueueKind::Heap,
            ..cfg_with(4)
        };
        assert_eq!(plan_shards(&net, &policy, &heap), 1);
    }
}
