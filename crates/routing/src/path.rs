//! Fixed-capacity route paths.
//!
//! All routes in this crate are source-determined at injection time
//! (matching the paper's per-packet UGAL decision) and are at most
//! `2 + 2` router-to-router hops for the restricted indirect schemes, or
//! `2 + 2 + 2` for the unrestricted-intermediate ablation; repaired
//! routes on degraded networks stretch further (two phases of up to the
//! repaired diameter each). A small inline array avoids any allocation
//! on the packet hot path.

use d2net_topo::RouterId;

/// Maximum number of routers on a route (supports up to 11 hops — two
/// indirect phases of a repaired diameter up to 5 each, plus headroom).
pub const MAX_PATH_ROUTERS: usize = 12;

/// A router-level route: the sequence of routers a packet traverses,
/// including source and destination routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePath {
    len: u8,
    hops: [RouterId; MAX_PATH_ROUTERS],
}

impl RoutePath {
    /// Starts a path at `src`.
    pub fn new(src: RouterId) -> Self {
        let mut hops = [0; MAX_PATH_ROUTERS];
        hops[0] = src;
        RoutePath { len: 1, hops }
    }

    /// Builds a path from a router sequence.
    pub fn from_routers(routers: &[RouterId]) -> Self {
        assert!(
            !routers.is_empty() && routers.len() <= MAX_PATH_ROUTERS,
            "path must have 1..={MAX_PATH_ROUTERS} routers"
        );
        let mut hops = [0; MAX_PATH_ROUTERS];
        hops[..routers.len()].copy_from_slice(routers);
        RoutePath {
            len: routers.len() as u8,
            hops,
        }
    }

    /// Appends a router.
    #[inline]
    pub fn push(&mut self, r: RouterId) {
        assert!(
            (self.len as usize) < MAX_PATH_ROUTERS,
            "route exceeds {MAX_PATH_ROUTERS} routers"
        );
        self.hops[self.len as usize] = r;
        self.len += 1;
    }

    /// The routers on the path, source first.
    #[inline]
    pub fn routers(&self) -> &[RouterId] {
        &self.hops[..self.len as usize]
    }

    /// Number of router-to-router hops (`routers - 1`).
    #[inline]
    pub fn num_hops(&self) -> usize {
        self.len as usize - 1
    }

    /// Source router.
    #[inline]
    pub fn src(&self) -> RouterId {
        self.hops[0]
    }

    /// Destination router.
    #[inline]
    pub fn dst(&self) -> RouterId {
        self.hops[self.len as usize - 1]
    }

    /// Router after position `i` (the next hop for a packet currently at
    /// `routers()[i]`). Returns `None` at the destination.
    #[inline]
    pub fn next_after(&self, i: usize) -> Option<RouterId> {
        (i + 1 < self.len as usize).then(|| self.hops[i + 1])
    }

    /// Directed links `(from, to)` along the path.
    pub fn links(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.routers().windows(2).map(|w| (w[0], w[1]))
    }

    /// Concatenates two path segments sharing a junction router
    /// (`self.dst() == tail.src()`).
    pub fn join(&self, tail: &RoutePath) -> RoutePath {
        assert_eq!(self.dst(), tail.src(), "segments must share the junction router");
        let mut out = *self;
        for &r in &tail.routers()[1..] {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut p = RoutePath::new(3);
        p.push(7);
        p.push(9);
        assert_eq!(p.routers(), &[3, 7, 9]);
        assert_eq!(p.num_hops(), 2);
        assert_eq!(p.src(), 3);
        assert_eq!(p.dst(), 9);
        assert_eq!(p.next_after(0), Some(7));
        assert_eq!(p.next_after(1), Some(9));
        assert_eq!(p.next_after(2), None);
        let links: Vec<_> = p.links().collect();
        assert_eq!(links, vec![(3, 7), (7, 9)]);
    }

    #[test]
    fn join_segments() {
        let a = RoutePath::from_routers(&[1, 2, 3]);
        let b = RoutePath::from_routers(&[3, 4]);
        let j = a.join(&b);
        assert_eq!(j.routers(), &[1, 2, 3, 4]);
    }

    #[test]
    fn single_router_path() {
        let p = RoutePath::from_routers(&[5]);
        assert_eq!(p.num_hops(), 0);
        assert_eq!(p.src(), 5);
        assert_eq!(p.dst(), 5);
        assert_eq!(p.next_after(0), None);
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn join_requires_shared_router() {
        let a = RoutePath::from_routers(&[1, 2]);
        let b = RoutePath::from_routers(&[3, 4]);
        let _ = a.join(&b);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflow_detected() {
        let mut p = RoutePath::new(0);
        for i in 1..=MAX_PATH_ROUTERS as u32 {
            p.push(i);
        }
    }
}
