//! Channel dependency graph (CDG) construction and acyclicity checking —
//! the formal tool behind the paper's deadlock-freedom arguments (§3.4,
//! after Dally & Towles).
//!
//! A *channel* is a directed router-to-router link paired with a VC. A
//! route that uses channel `c1` immediately followed by channel `c2`
//! induces the dependency `c1 → c2`; routing is deadlock-free if the
//! union of dependencies over every route the policy can produce is
//! acyclic.

use crate::path::RoutePath;
use crate::policy::{Algorithm, RouteChoice, RoutePolicy};
use crate::tables::MinimalTables;
use d2net_topo::{Network, RouterId};
use std::collections::HashSet;
use std::fmt;

/// A channel lookup or route registration that does not fit the network
/// the CDG was built for. Surfaced as a value (not a panic) so static
/// analysis can report broken adjacency as a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The route claims a link the network does not have.
    MissingLink { from: RouterId, to: RouterId },
    /// A VC label at or beyond the provisioned VC count.
    VcOutOfRange { vc: u8, num_vcs: u8 },
    /// A route's VC label list does not cover its hops one-to-one.
    LabelMismatch { hops: usize, labels: usize },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::MissingLink { from, to } => {
                write!(f, "no link {from} -> {to} in the network adjacency")
            }
            ChannelError::VcOutOfRange { vc, num_vcs } => {
                write!(f, "VC {vc} out of range (provisioned {num_vcs})")
            }
            ChannelError::LabelMismatch { hops, labels } => {
                write!(f, "route has {hops} hops but {labels} VC labels")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// A CDG over `channels = directed links × VCs`.
pub struct ChannelGraph {
    /// Per-router offset into the directed-edge id space.
    edge_offset: Vec<u32>,
    /// Neighbor lists (mirrors the network adjacency) for edge-id lookup.
    neighbors: Vec<Vec<RouterId>>,
    num_vcs: u8,
    /// Dependency adjacency: `deps[c1]` lists channels reachable from `c1`.
    deps: Vec<Vec<u32>>,
    /// Dedup guard over `(c1, c2)` pairs: exhaustive route enumeration
    /// registers the same dependency many times; storing it once keeps
    /// memory proportional to *distinct* dependencies.
    seen: HashSet<u64>,
}

impl ChannelGraph {
    /// Creates an empty CDG for `net` with `num_vcs` virtual channels.
    pub fn new(net: &Network, num_vcs: u8) -> Self {
        assert!(num_vcs >= 1);
        let r = net.num_routers();
        let mut edge_offset = Vec::with_capacity(r as usize);
        let mut neighbors = Vec::with_capacity(r as usize);
        let mut total = 0u32;
        for u in 0..r {
            edge_offset.push(total);
            let nb = net.neighbors(u).to_vec();
            total += nb.len() as u32;
            neighbors.push(nb);
        }
        ChannelGraph {
            edge_offset,
            neighbors,
            num_vcs,
            deps: vec![Vec::new(); total as usize * num_vcs as usize],
            seen: HashSet::new(),
        }
    }

    /// Channel id of directed link `(u, v)` on `vc`, or a [`ChannelError`]
    /// if the link or VC does not exist in this network.
    pub fn channel(&self, u: RouterId, v: RouterId, vc: u8) -> Result<u32, ChannelError> {
        if vc >= self.num_vcs {
            return Err(ChannelError::VcOutOfRange {
                vc,
                num_vcs: self.num_vcs,
            });
        }
        let nb = self
            .neighbors
            .get(u as usize)
            .ok_or(ChannelError::MissingLink { from: u, to: v })?;
        let j = nb
            .binary_search(&v)
            .map_err(|_| ChannelError::MissingLink { from: u, to: v })?;
        Ok((self.edge_offset[u as usize] + j as u32) * self.num_vcs as u32 + vc as u32)
    }

    /// Inverse of [`ChannelGraph::channel`]: channel id back to
    /// `(from, to, vc)`.
    pub fn decode(&self, c: u32) -> (RouterId, RouterId, u8) {
        let vc = (c % self.num_vcs as u32) as u8;
        let edge = c / self.num_vcs as u32;
        let u = self.edge_offset.partition_point(|&off| off <= edge) - 1;
        let v = self.neighbors[u][(edge - self.edge_offset[u]) as usize];
        (u as RouterId, v, vc)
    }

    /// Total channel count.
    pub fn num_channels(&self) -> usize {
        self.deps.len()
    }

    /// VC count the graph was provisioned with.
    pub fn num_vcs(&self) -> u8 {
        self.num_vcs
    }

    /// Channels that `c` depends on.
    pub fn deps_of(&self, c: u32) -> &[u32] {
        &self.deps[c as usize]
    }

    /// Registers the dependencies induced by one route: consecutive
    /// `(link, vc)` pairs along the path. Duplicate dependencies are
    /// stored once.
    pub fn add_route(&mut self, path: &RoutePath, vcs: &[u8]) -> Result<(), ChannelError> {
        if vcs.len() != path.num_hops() {
            return Err(ChannelError::LabelMismatch {
                hops: path.num_hops(),
                labels: vcs.len(),
            });
        }
        let routers = path.routers();
        for i in 0..path.num_hops().saturating_sub(1) {
            let c1 = self.channel(routers[i], routers[i + 1], vcs[i])?;
            let c2 = self.channel(routers[i + 1], routers[i + 2], vcs[i + 1])?;
            if self.seen.insert((c1 as u64) << 32 | c2 as u64) {
                self.deps[c1 as usize].push(c2);
            }
        }
        Ok(())
    }

    /// True if the dependency graph contains no cycle (iterative
    /// three-color DFS).
    pub fn is_acyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.deps.len();
        let mut color = vec![Color::White; n];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if color[start as usize] != Color::White {
                continue;
            }
            color[start as usize] = Color::Gray;
            stack.push((start, 0));
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.deps[u as usize].len() {
                    let v = self.deps[u as usize][*i];
                    *i += 1;
                    match color[v as usize] {
                        Color::White => {
                            color[v as usize] = Color::Gray;
                            stack.push((v, 0));
                        }
                        Color::Gray => return false,
                        Color::Black => {}
                    }
                } else {
                    color[u as usize] = Color::Black;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Extracts a concrete deadlock counterexample: a shortest dependency
    /// cycle, as channel ids in order (`out[i] → out[i+1]`, last wrapping
    /// to first). Returns `None` iff the graph is acyclic.
    ///
    /// The cycle is found by strongly-connected-component decomposition
    /// followed by BFS from members of the smallest non-trivial SCC, so
    /// it is a shortest cycle within that component (on very large cyclic
    /// components the BFS start set is capped at 512 members, keeping the
    /// search near-linear while still producing a short witness).
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        let n = self.deps.len();
        // Self-dependencies cannot arise from real routes (a hop leaves
        // the router the previous hop entered), but a one-channel cycle is
        // the shortest possible counterexample, so check anyway.
        for (c, ds) in self.deps.iter().enumerate() {
            if ds.contains(&(c as u32)) {
                return Some(vec![c as u32]);
            }
        }

        // Kosaraju: order by reverse finish time on the forward graph,
        // then peel components off the transposed graph.
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            stack.push((start, 0));
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.deps[u as usize].len() {
                    let v = self.deps[u as usize][*i];
                    *i += 1;
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, ds) in self.deps.iter().enumerate() {
            for &v in ds {
                rev[v as usize].push(u as u32);
            }
        }
        const NO_COMP: u32 = u32::MAX;
        let mut comp = vec![NO_COMP; n];
        let mut comp_members: Vec<Vec<u32>> = Vec::new();
        let mut dfs: Vec<u32> = Vec::new();
        for &start in order.iter().rev() {
            if comp[start as usize] != NO_COMP {
                continue;
            }
            let id = comp_members.len() as u32;
            let mut members = Vec::new();
            comp[start as usize] = id;
            dfs.push(start);
            while let Some(u) = dfs.pop() {
                members.push(u);
                for &v in &rev[u as usize] {
                    if comp[v as usize] == NO_COMP {
                        comp[v as usize] = id;
                        dfs.push(v);
                    }
                }
            }
            comp_members.push(members);
        }

        // Smallest component that can host a cycle.
        let scc = comp_members
            .iter()
            .filter(|m| m.len() > 1)
            .min_by_key(|m| m.len())?;
        let scc_id = comp[scc[0] as usize];

        // Shortest cycle through any of (up to 512 of) its members: BFS
        // restricted to the component, looking for a path back to the
        // start node.
        let stride = scc.len().div_ceil(512);
        let mut best: Option<Vec<u32>> = None;
        let mut parent: Vec<u32> = vec![NO_COMP; n];
        let mut queue: std::collections::VecDeque<(u32, u32)> = std::collections::VecDeque::new();
        for &src in scc.iter().step_by(stride) {
            if let Some(ref b) = best {
                if b.len() <= 2 {
                    break;
                }
            }
            for &m in scc.iter() {
                parent[m as usize] = NO_COMP;
            }
            queue.clear();
            queue.push_back((src, 0));
            'bfs: while let Some((u, depth)) = queue.pop_front() {
                if let Some(ref b) = best {
                    if depth + 1 >= b.len() as u32 {
                        break;
                    }
                }
                for &v in &self.deps[u as usize] {
                    if v == src {
                        // Closed a cycle: src → … → u → src.
                        let mut cyc = vec![u];
                        let mut cur = u;
                        while cur != src {
                            cur = parent[cur as usize];
                            cyc.push(cur);
                        }
                        cyc.reverse();
                        best = Some(cyc);
                        break 'bfs;
                    }
                    if comp[v as usize] == scc_id && parent[v as usize] == NO_COMP {
                        parent[v as usize] = u;
                        queue.push_back((v, depth + 1));
                    }
                }
            }
        }
        debug_assert!(best.is_some(), "non-trivial SCC must contain a cycle");
        best
    }
}

/// Enumerates every minimal path between `s` and `d` (DFS over the
/// first-hop DAG).
pub fn enumerate_min_paths(tables: &MinimalTables, s: RouterId, d: RouterId) -> Vec<RoutePath> {
    fn rec(tables: &MinimalTables, cur: RouterId, d: RouterId, prefix: RoutePath, out: &mut Vec<RoutePath>) {
        if cur == d {
            out.push(prefix);
            return;
        }
        for &n in tables.first_hops(cur, d) {
            let mut p = prefix;
            p.push(n);
            rec(tables, n, d, p, out);
        }
    }
    let mut out = Vec::new();
    if s != d {
        rec(tables, s, d, RoutePath::new(s), &mut out);
    }
    out
}

/// Every route `policy` can produce, paired with its per-hop VC labels:
/// all minimal paths for every router pair, plus — for indirect-capable
/// algorithms — all `minimal ∘ minimal` compositions through every
/// eligible intermediate. Exhaustive, so only feasible on small networks
/// (the property being verified is scale-independent).
pub fn all_policy_routes(net: &Network, policy: &RoutePolicy) -> Vec<(RoutePath, Vec<u8>)> {
    let tables = policy.tables();
    let mut out = Vec::new();
    let label = |path: RoutePath, phase_hops: u8, indirect: bool| {
        let choice = RouteChoice {
            path,
            phase_hops,
            indirect,
        };
        let vcs: Vec<u8> = (0..path.num_hops())
            .map(|h| policy.vc_for_hop(&choice, h))
            .collect();
        (path, vcs)
    };
    let endpoint_routers = net.endpoint_routers();
    for &s in &endpoint_routers {
        for &d in &endpoint_routers {
            if s == d {
                continue;
            }
            for p in enumerate_min_paths(tables, s, d) {
                out.push(label(p, p.num_hops() as u8, false));
            }
        }
    }
    if matches!(policy.algorithm(), Algorithm::Minimal) {
        return out;
    }
    // Indirect routes, through exactly the intermediates the policy may
    // sample (this respects `with_overrides` ablations too).
    let mids = policy.intermediates();
    for &s in &endpoint_routers {
        for &m in mids {
            if m == s {
                continue;
            }
            for &d in &endpoint_routers {
                if d == s || d == m {
                    continue;
                }
                // Mirror `sample_intermediate`'s eligibility rule: both
                // segments must survive and the composition must fit a
                // RoutePath (relevant on degraded networks only).
                if !tables.is_reachable(s, m)
                    || !tables.is_reachable(m, d)
                    || tables.dist(s, m) as usize + tables.dist(m, d) as usize
                        >= crate::path::MAX_PATH_ROUTERS
                {
                    continue;
                }
                for head in enumerate_min_paths(tables, s, m) {
                    for tail in enumerate_min_paths(tables, m, d) {
                        out.push(label(head.join(&tail), head.num_hops() as u8, true));
                    }
                }
            }
        }
    }
    out
}

/// Builds the full CDG for `net` under `policy`, surfacing any
/// route/adjacency inconsistency as an error instead of panicking.
pub fn try_build_cdg(net: &Network, policy: &RoutePolicy) -> Result<ChannelGraph, ChannelError> {
    let mut g = ChannelGraph::new(net, policy.num_vcs());
    for (path, vcs) in all_policy_routes(net, policy) {
        g.add_route(&path, &vcs)?;
    }
    Ok(g)
}

/// Builds the full CDG for `net` under `policy`.
pub fn build_cdg(net: &Network, policy: &RoutePolicy) -> ChannelGraph {
    try_build_cdg(net, policy)
        .unwrap_or_else(|e| panic!("policy produced a route off the network: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Algorithm, RoutePolicy};
    use d2net_topo::{mlfm, oft, slim_fly, SlimFlyP};

    #[test]
    fn sf_minimal_two_vcs_acyclic() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        assert_eq!(policy.num_vcs(), 2);
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn sf_indirect_four_vcs_acyclic() {
        let net = slim_fly(3, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        assert_eq!(policy.num_vcs(), 4);
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn sspt_minimal_single_vc_acyclic() {
        // §3.4: MLFM and OFT are inherently deadlock-free under minimal
        // routing — every route is a towards link followed by an away link.
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Minimal);
            assert_eq!(policy.num_vcs(), 1);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn generic_sspt_schemes_deadlock_free() {
        // The stacked-SSPT generic builder inherits the MLFM/OFT VC rules.
        let net = d2net_topo::stacked_sspt(4, 2, 4);
        for algo in [Algorithm::Minimal, Algorithm::Valiant] {
            let policy = RoutePolicy::new(&net, algo);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{algo:?}");
        }
        assert_eq!(RoutePolicy::new(&net, Algorithm::Minimal).num_vcs(), 1);
        assert_eq!(RoutePolicy::new(&net, Algorithm::Valiant).num_vcs(), 2);
    }

    #[test]
    fn sspt_indirect_two_vcs_acyclic() {
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            assert_eq!(policy.num_vcs(), 2);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn sspt_indirect_single_vc_has_cycles() {
        // The negative control for §3.4: collapsing both phases onto one VC
        // leaves towards→away→towards→away routes that close cycles in the
        // CDG. This is the deadlock the second VC exists to break.
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            let mut g = ChannelGraph::new(&net, 1);
            for (path, _) in all_policy_routes(&net, &policy) {
                let vcs = vec![0u8; path.num_hops()];
                g.add_route(&path, &vcs).unwrap();
            }
            assert!(!g.is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn sf_indirect_single_vc_has_cycles() {
        let net = slim_fly(3, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let mut g = ChannelGraph::new(&net, 1);
        for (path, _) in all_policy_routes(&net, &policy) {
            let vcs = vec![0u8; path.num_hops()];
            g.add_route(&path, &vcs).unwrap();
        }
        assert!(!g.is_acyclic());
        // The extracted counterexample must be a genuine cycle: every
        // consecutive pair is a registered dependency, the last wraps to
        // the first, and consecutive channels chain head-to-tail.
        let cyc = g.find_cycle().expect("cyclic CDG must yield a witness");
        assert!(cyc.len() >= 2);
        for i in 0..cyc.len() {
            let c1 = cyc[i];
            let c2 = cyc[(i + 1) % cyc.len()];
            assert!(g.deps_of(c1).contains(&c2), "edge {c1}->{c2} not in CDG");
            let (_, v1, _) = g.decode(c1);
            let (u2, _, _) = g.decode(c2);
            assert_eq!(v1, u2, "cycle channels must chain head-to-tail");
        }
    }

    #[test]
    fn acyclic_cdg_has_no_cycle_witness() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let g = build_cdg(&net, &policy);
        assert!(g.is_acyclic());
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn missing_link_is_an_error_not_a_panic() {
        let net = mlfm(3);
        let g = ChannelGraph::new(&net, 2);
        let (u, v) = (0..net.num_routers())
            .flat_map(|u| (0..net.num_routers()).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !net.neighbors(u).contains(&v))
            .expect("a diameter-two network has some non-adjacent pair");
        assert_eq!(
            g.channel(u, v, 0),
            Err(ChannelError::MissingLink { from: u, to: v })
        );
        let w = net.neighbors(0)[0];
        assert_eq!(
            g.channel(0, w, 2),
            Err(ChannelError::VcOutOfRange { vc: 2, num_vcs: 2 })
        );
    }

    #[test]
    fn decode_roundtrips_channel_ids() {
        let net = mlfm(3);
        let g = ChannelGraph::new(&net, 2);
        for u in 0..net.num_routers() {
            for &v in net.neighbors(u) {
                for vc in 0..2 {
                    let c = g.channel(u, v, vc).unwrap();
                    assert_eq!(g.decode(c), (u, v, vc));
                }
            }
        }
    }

    #[test]
    fn ugal_uses_same_route_space_as_valiant() {
        // UGAL chooses per packet between the same minimal and indirect
        // routes, so its CDG is a subgraph of Valiant's: acyclic too.
        let net = mlfm(3);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: Some(0.1),
            },
        );
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn enumerate_min_paths_counts() {
        let net = mlfm(3);
        let t = MinimalTables::build(&net);
        // Same-column LR pair: h = 3 paths; cross-column pair: 1.
        assert_eq!(enumerate_min_paths(&t, 0, 4).len(), 3);
        assert_eq!(enumerate_min_paths(&t, 0, 5).len(), 1);
        assert!(enumerate_min_paths(&t, 0, 0).is_empty());
    }

    #[test]
    fn channel_ids_are_dense_and_distinct() {
        let net = mlfm(3);
        let g = ChannelGraph::new(&net, 2);
        let mut seen = std::collections::HashSet::new();
        for u in 0..net.num_routers() {
            for &v in net.neighbors(u) {
                for vc in 0..2 {
                    let c = g.channel(u, v, vc).unwrap();
                    assert!((c as usize) < g.num_channels());
                    assert!(seen.insert(c));
                }
            }
        }
        assert_eq!(seen.len(), g.num_channels());
    }
}
