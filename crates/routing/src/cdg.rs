//! Channel dependency graph (CDG) construction and acyclicity checking —
//! the formal tool behind the paper's deadlock-freedom arguments (§3.4,
//! after Dally & Towles).
//!
//! A *channel* is a directed router-to-router link paired with a VC. A
//! route that uses channel `c1` immediately followed by channel `c2`
//! induces the dependency `c1 → c2`; routing is deadlock-free if the
//! union of dependencies over every route the policy can produce is
//! acyclic.

use crate::path::RoutePath;
use crate::policy::{Algorithm, RouteChoice, RoutePolicy};
use crate::tables::MinimalTables;
use d2net_topo::{Network, RouterId};

/// A CDG over `channels = directed links × VCs`.
pub struct ChannelGraph {
    /// Per-router offset into the directed-edge id space.
    edge_offset: Vec<u32>,
    /// Neighbor lists (mirrors the network adjacency) for edge-id lookup.
    neighbors: Vec<Vec<RouterId>>,
    num_vcs: u8,
    /// Dependency adjacency: `deps[c1]` lists channels reachable from `c1`.
    deps: Vec<Vec<u32>>,
}

impl ChannelGraph {
    /// Creates an empty CDG for `net` with `num_vcs` virtual channels.
    pub fn new(net: &Network, num_vcs: u8) -> Self {
        assert!(num_vcs >= 1);
        let r = net.num_routers();
        let mut edge_offset = Vec::with_capacity(r as usize);
        let mut neighbors = Vec::with_capacity(r as usize);
        let mut total = 0u32;
        for u in 0..r {
            edge_offset.push(total);
            let nb = net.neighbors(u).to_vec();
            total += nb.len() as u32;
            neighbors.push(nb);
        }
        ChannelGraph {
            edge_offset,
            neighbors,
            num_vcs,
            deps: vec![Vec::new(); total as usize * num_vcs as usize],
        }
    }

    /// Channel id of directed link `(u, v)` on `vc`.
    pub fn channel(&self, u: RouterId, v: RouterId, vc: u8) -> u32 {
        debug_assert!(vc < self.num_vcs);
        let j = self.neighbors[u as usize]
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("no link {u} -> {v}"));
        (self.edge_offset[u as usize] + j as u32) * self.num_vcs as u32 + vc as u32
    }

    /// Total channel count.
    pub fn num_channels(&self) -> usize {
        self.deps.len()
    }

    /// Registers the dependencies induced by one route: consecutive
    /// `(link, vc)` pairs along the path.
    pub fn add_route(&mut self, path: &RoutePath, vcs: &[u8]) {
        assert_eq!(vcs.len(), path.num_hops());
        let routers = path.routers();
        for i in 0..path.num_hops().saturating_sub(1) {
            let c1 = self.channel(routers[i], routers[i + 1], vcs[i]);
            let c2 = self.channel(routers[i + 1], routers[i + 2], vcs[i + 1]);
            self.deps[c1 as usize].push(c2);
        }
    }

    /// True if the dependency graph contains no cycle (iterative
    /// three-color DFS).
    pub fn is_acyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.deps.len();
        let mut color = vec![Color::White; n];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if color[start as usize] != Color::White {
                continue;
            }
            color[start as usize] = Color::Gray;
            stack.push((start, 0));
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.deps[u as usize].len() {
                    let v = self.deps[u as usize][*i];
                    *i += 1;
                    match color[v as usize] {
                        Color::White => {
                            color[v as usize] = Color::Gray;
                            stack.push((v, 0));
                        }
                        Color::Gray => return false,
                        Color::Black => {}
                    }
                } else {
                    color[u as usize] = Color::Black;
                    stack.pop();
                }
            }
        }
        true
    }
}

/// Enumerates every minimal path between `s` and `d` (DFS over the
/// first-hop DAG).
pub fn enumerate_min_paths(tables: &MinimalTables, s: RouterId, d: RouterId) -> Vec<RoutePath> {
    fn rec(tables: &MinimalTables, cur: RouterId, d: RouterId, prefix: RoutePath, out: &mut Vec<RoutePath>) {
        if cur == d {
            out.push(prefix);
            return;
        }
        for &n in tables.first_hops(cur, d) {
            let mut p = prefix;
            p.push(n);
            rec(tables, n, d, p, out);
        }
    }
    let mut out = Vec::new();
    if s != d {
        rec(tables, s, d, RoutePath::new(s), &mut out);
    }
    out
}

/// Every route `policy` can produce, paired with its per-hop VC labels:
/// all minimal paths for every router pair, plus — for indirect-capable
/// algorithms — all `minimal ∘ minimal` compositions through every
/// eligible intermediate. Exhaustive, so only feasible on small networks
/// (the property being verified is scale-independent).
pub fn all_policy_routes(net: &Network, policy: &RoutePolicy) -> Vec<(RoutePath, Vec<u8>)> {
    let tables = policy.tables();
    let mut out = Vec::new();
    let label = |path: RoutePath, phase_hops: u8, indirect: bool| {
        let choice = RouteChoice {
            path,
            phase_hops,
            indirect,
        };
        let vcs: Vec<u8> = (0..path.num_hops())
            .map(|h| policy.vc_for_hop(&choice, h))
            .collect();
        (path, vcs)
    };
    let endpoint_routers = net.endpoint_routers();
    for &s in &endpoint_routers {
        for &d in &endpoint_routers {
            if s == d {
                continue;
            }
            for p in enumerate_min_paths(tables, s, d) {
                out.push(label(p, p.num_hops() as u8, false));
            }
        }
    }
    if matches!(policy.algorithm(), Algorithm::Minimal) {
        return out;
    }
    // Indirect routes. The eligible intermediate set is internal to the
    // policy; re-derive it the same way the policy does.
    let mids: Vec<RouterId> = match net.kind() {
        d2net_topo::TopologyKind::SlimFly(_) => (0..net.num_routers()).collect(),
        d2net_topo::TopologyKind::Mlfm(_)
        | d2net_topo::TopologyKind::Oft(_)
        | d2net_topo::TopologyKind::Sspt(_)
        | d2net_topo::TopologyKind::FatTree2(_) => endpoint_routers.clone(),
        _ => (0..net.num_routers()).collect(),
    };
    for &s in &endpoint_routers {
        for &m in &mids {
            if m == s {
                continue;
            }
            for &d in &endpoint_routers {
                if d == s || d == m {
                    continue;
                }
                for head in enumerate_min_paths(tables, s, m) {
                    for tail in enumerate_min_paths(tables, m, d) {
                        out.push(label(head.join(&tail), head.num_hops() as u8, true));
                    }
                }
            }
        }
    }
    out
}

/// Builds the full CDG for `net` under `policy`.
pub fn build_cdg(net: &Network, policy: &RoutePolicy) -> ChannelGraph {
    let mut g = ChannelGraph::new(net, policy.num_vcs());
    for (path, vcs) in all_policy_routes(net, policy) {
        g.add_route(&path, &vcs);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Algorithm, RoutePolicy};
    use d2net_topo::{mlfm, oft, slim_fly, SlimFlyP};

    #[test]
    fn sf_minimal_two_vcs_acyclic() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        assert_eq!(policy.num_vcs(), 2);
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn sf_indirect_four_vcs_acyclic() {
        let net = slim_fly(3, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        assert_eq!(policy.num_vcs(), 4);
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn sspt_minimal_single_vc_acyclic() {
        // §3.4: MLFM and OFT are inherently deadlock-free under minimal
        // routing — every route is a towards link followed by an away link.
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Minimal);
            assert_eq!(policy.num_vcs(), 1);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn generic_sspt_schemes_deadlock_free() {
        // The stacked-SSPT generic builder inherits the MLFM/OFT VC rules.
        let net = d2net_topo::stacked_sspt(4, 2, 4);
        for algo in [Algorithm::Minimal, Algorithm::Valiant] {
            let policy = RoutePolicy::new(&net, algo);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{algo:?}");
        }
        assert_eq!(RoutePolicy::new(&net, Algorithm::Minimal).num_vcs(), 1);
        assert_eq!(RoutePolicy::new(&net, Algorithm::Valiant).num_vcs(), 2);
    }

    #[test]
    fn sspt_indirect_two_vcs_acyclic() {
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            assert_eq!(policy.num_vcs(), 2);
            assert!(build_cdg(&net, &policy).is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn sspt_indirect_single_vc_has_cycles() {
        // The negative control for §3.4: collapsing both phases onto one VC
        // leaves towards→away→towards→away routes that close cycles in the
        // CDG. This is the deadlock the second VC exists to break.
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            let mut g = ChannelGraph::new(&net, 1);
            for (path, _) in all_policy_routes(&net, &policy) {
                let vcs = vec![0u8; path.num_hops()];
                g.add_route(&path, &vcs);
            }
            assert!(!g.is_acyclic(), "{}", net.name());
        }
    }

    #[test]
    fn sf_indirect_single_vc_has_cycles() {
        let net = slim_fly(3, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let mut g = ChannelGraph::new(&net, 1);
        for (path, _) in all_policy_routes(&net, &policy) {
            let vcs = vec![0u8; path.num_hops()];
            g.add_route(&path, &vcs);
        }
        assert!(!g.is_acyclic());
    }

    #[test]
    fn ugal_uses_same_route_space_as_valiant() {
        // UGAL chooses per packet between the same minimal and indirect
        // routes, so its CDG is a subgraph of Valiant's: acyclic too.
        let net = mlfm(3);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: Some(0.1),
            },
        );
        assert!(build_cdg(&net, &policy).is_acyclic());
    }

    #[test]
    fn enumerate_min_paths_counts() {
        let net = mlfm(3);
        let t = MinimalTables::build(&net);
        // Same-column LR pair: h = 3 paths; cross-column pair: 1.
        assert_eq!(enumerate_min_paths(&t, 0, 4).len(), 3);
        assert_eq!(enumerate_min_paths(&t, 0, 5).len(), 1);
        assert!(enumerate_min_paths(&t, 0, 0).is_empty());
    }

    #[test]
    fn channel_ids_are_dense_and_distinct() {
        let net = mlfm(3);
        let g = ChannelGraph::new(&net, 2);
        let mut seen = std::collections::HashSet::new();
        for u in 0..net.num_routers() {
            for &v in net.neighbors(u) {
                for vc in 0..2 {
                    let c = g.channel(u, v, vc);
                    assert!((c as usize) < g.num_channels());
                    assert!(seen.insert(c));
                }
            }
        }
        assert_eq!(seen.len(), g.num_channels());
    }
}
