//! Route selection policies: oblivious minimal (§3.1), oblivious indirect
//! random / Valiant (§3.2), and the local UGAL adaptive variants (§3.3),
//! together with the VC assignment rules that make each deadlock-free
//! (§3.4).
//!
//! All decisions are taken once, at packet injection, using only state
//! local to the source router (the occupancies of its own output ports) —
//! the paper's "local variant of UGAL".

use crate::path::{RoutePath, MAX_PATH_ROUTERS};
use crate::tables::MinimalTables;
use d2net_topo::{Network, RouterId, TopologyKind};
use rand::Rng;

/// The routing algorithm to apply at injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Oblivious minimal routing (MIN).
    Minimal,
    /// Oblivious indirect random routing (INR): always route via a
    /// uniformly random intermediate router.
    Valiant,
    /// Global UGAL (UGAL-G): like [`Algorithm::Ugal`], but costs each
    /// candidate by the *sum of output occupancies along its whole path*
    /// rather than the first port only. The paper (§3.3) notes this
    /// variant "requires knowledge of the buffers' state for the whole
    /// topology at the point of injection, which is hard to implement in
    /// practice" — included here as the idealized upper baseline.
    UgalG {
        /// Number of indirect candidates considered per packet.
        n_i: usize,
        /// Penalty constant applied to indirect path costs.
        c: f64,
    },
    /// Local UGAL: choose between the minimal path and `n_i` random
    /// indirect candidates by comparing first-output-port occupancies.
    Ugal {
        /// Number of indirect candidates considered per packet.
        n_i: usize,
        /// Penalty constant `c` (`cSF` for the Slim Fly's scaled variant).
        c: f64,
        /// `Some(T)` enables the thresholded variant (SF-ATh/MLFM-ATh/
        /// OFT-ATh): route minimally outright while the minimal output
        /// buffer is below fraction `T` of its capacity.
        threshold: Option<f64>,
    },
}

/// How VCs are assigned along a route (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcScheme {
    /// VC = hop index. Used by the Slim Fly: 2 VCs suffice for minimal
    /// routing, 4 for indirect — the VC strictly increases along any path,
    /// so the channel dependency graph is a DAG by construction.
    HopIndex,
    /// VC = 0 while heading toward the Valiant intermediate, 1 afterwards.
    /// Used by the MLFM and OFT: each phase is a *towards*/*away* pair
    /// that is inherently cycle-free, so minimal routing needs 1 VC and
    /// indirect routing 2.
    PhaseBased,
    /// Every hop on VC 0. **Deliberately unsafe** under indirect routing —
    /// kept as the negative control for the deadlock-avoidance ablation
    /// (§3.4 shows the resulting CDG cycles; the simulator shows the
    /// wedge).
    SingleVc,
}

/// VC for the `hop`-th link (0-based) of `choice` under `scheme` — the
/// free-function form of [`RoutePolicy::vc_for_hop`]. Simulators stamp
/// each packet with the scheme of the policy that routed it, so packets
/// routed before and after a mid-run table repair (which may switch a
/// phase-based family to hop-indexed VCs) coexist in flight with
/// consistent labels.
#[inline]
pub fn vc_for_hop(scheme: VcScheme, choice: &RouteChoice, hop: usize) -> u8 {
    match scheme {
        VcScheme::HopIndex => hop as u8,
        VcScheme::PhaseBased => {
            if choice.indirect && hop >= choice.phase_hops as usize {
                1
            } else {
                0
            }
        }
        VcScheme::SingleVc => 0,
    }
}

/// Which routers may serve as Valiant intermediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntermediateSet {
    /// Any router (the Slim Fly rule; paths of 2–4 hops).
    AllRouters,
    /// Only routers with end-nodes attached (the MLFM/OFT rule; paths of
    /// exactly 4 hops). Avoids both under-balancing 2-hop and high-latency
    /// 6-hop indirect routes (§3.2).
    EndpointRouters,
}

/// A fully resolved route for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// The router sequence, source to destination.
    pub path: RoutePath,
    /// Hops belonging to the first phase (toward the intermediate);
    /// equal to `path.num_hops()` for minimal routes.
    pub phase_hops: u8,
    /// True if this is an indirect (Valiant) route.
    pub indirect: bool,
}

/// Read-only view of the injection router's output-port occupancies, the
/// only network state local UGAL is allowed to consult.
pub trait OccupancyView {
    /// Bytes currently queued at `router`'s output port toward `next`.
    fn occupancy_bytes(&self, router: RouterId, next: RouterId) -> u64;
    /// Capacity of one output buffer in bytes (for threshold tests).
    fn capacity_bytes(&self) -> u64;
}

/// An [`OccupancyView`] reporting empty buffers everywhere; useful for
/// oblivious policies and tests.
pub struct ZeroOccupancy;

impl OccupancyView for ZeroOccupancy {
    fn occupancy_bytes(&self, _: RouterId, _: RouterId) -> u64 {
        0
    }
    fn capacity_bytes(&self) -> u64 {
        1
    }
}

/// How a routing decision was settled (decision-ledger taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionVerdict {
    /// Adaptive comparison ran and the minimal path won (or no indirect
    /// candidate beat it).
    Minimal,
    /// Adaptive comparison ran and an indirect candidate won.
    Indirect,
    /// Threshold short-circuit: `qM < T · capacity`, minimal forced
    /// without costing any candidate.
    ForcedMinimal,
    /// Oblivious indirect (Valiant): no cost comparison took place.
    ForcedIndirect,
    /// Indirect algorithm with no surviving intermediate (degraded
    /// networks): minimal fallback.
    FallbackMinimal,
}

impl DecisionVerdict {
    /// True for verdicts that route the packet indirectly.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self, DecisionVerdict::Indirect | DecisionVerdict::ForcedIndirect)
    }

    /// Stable lower-snake label for manifests and tables.
    pub fn name(self) -> &'static str {
        match self {
            DecisionVerdict::Minimal => "minimal",
            DecisionVerdict::Indirect => "indirect",
            DecisionVerdict::ForcedMinimal => "forced_minimal",
            DecisionVerdict::ForcedIndirect => "forced_indirect",
            DecisionVerdict::FallbackMinimal => "fallback_minimal",
        }
    }
}

/// One indirect candidate considered during an adaptive decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionCandidate {
    /// The Valiant intermediate sampled for this candidate.
    pub intermediate: RouterId,
    /// First hop the candidate would take out of the source router.
    pub first_hop: RouterId,
    /// Occupancy consulted for this candidate: the first output port's
    /// bytes under UGAL-L, the whole-path sum under UGAL-G.
    pub occupancy_bytes: u64,
    /// Penalty multiplier applied (`c`, or `L_I/L_M · c` when scaled).
    pub penalty: f64,
    /// Final cost `penalty · occupancy` the comparison used.
    pub cost: f64,
}

/// A full account of one injection-time routing decision: the state
/// consulted, every candidate costed, and the verdict. Emitted by
/// [`RoutePolicy::try_choose_recorded`]; byte-for-byte rng-neutral with
/// respect to [`RoutePolicy::try_choose`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Source router of the decision.
    pub src: RouterId,
    /// Destination router.
    pub dst: RouterId,
    /// Output-buffer capacity the occupancy view reported (threshold base).
    pub capacity_bytes: u64,
    /// First hop of the minimal route that was costed (for oblivious
    /// verdicts: the first hop of the chosen route).
    pub min_first_hop: RouterId,
    /// Occupancy cost of the minimal route: best first-port bytes under
    /// UGAL-L, whole-path sum under UGAL-G, 0 for oblivious verdicts.
    pub q_m: u64,
    /// Minimal-route cost as the comparison saw it (`qM` as f64).
    pub c_m: f64,
    /// `T · capacity − qM` when a threshold is configured (positive means
    /// the threshold forced the minimal route).
    pub threshold_margin: Option<f64>,
    /// Every indirect candidate costed, in sampling order.
    pub candidates: Vec<DecisionCandidate>,
    /// How the decision was settled.
    pub verdict: DecisionVerdict,
    /// Cost of the route actually taken.
    pub chosen_cost: f64,
    /// Divergence margin `c_m − best candidate cost`: positive when the
    /// best indirect candidate undercut the minimal route (diverted),
    /// non-positive when minimal held; 0 when no candidate was costed.
    pub margin: f64,
}

/// Compile-time tap on the decision internals of the `*_choice` methods.
/// [`NoSink`] (the `try_choose` path) has `ENABLED = false`, so every
/// recording block folds away and the adaptive algorithms run exactly the
/// instructions — and exactly the rng draws — they ran before the ledger
/// existed.
trait DecisionSink {
    const ENABLED: bool;
    fn begin(&mut self, src: RouterId, dst: RouterId, capacity_bytes: u64);
    fn minimal_cost(&mut self, first_hop: RouterId, q_m: u64, c_m: f64);
    fn threshold_margin(&mut self, margin: f64);
    fn candidate(&mut self, cand: DecisionCandidate);
    fn verdict(&mut self, verdict: DecisionVerdict, chosen_cost: f64, margin: f64);
}

/// The no-op sink behind [`RoutePolicy::try_choose`].
struct NoSink;

impl DecisionSink for NoSink {
    const ENABLED: bool = false;
    #[inline(always)]
    fn begin(&mut self, _: RouterId, _: RouterId, _: u64) {}
    #[inline(always)]
    fn minimal_cost(&mut self, _: RouterId, _: u64, _: f64) {}
    #[inline(always)]
    fn threshold_margin(&mut self, _: f64) {}
    #[inline(always)]
    fn candidate(&mut self, _: DecisionCandidate) {}
    #[inline(always)]
    fn verdict(&mut self, _: DecisionVerdict, _: f64, _: f64) {}
}

/// Builds a [`DecisionRecord`] in place as the choice methods report in.
struct RecordSink {
    rec: DecisionRecord,
}

impl RecordSink {
    fn new() -> Self {
        RecordSink {
            rec: DecisionRecord {
                src: 0,
                dst: 0,
                capacity_bytes: 0,
                min_first_hop: 0,
                q_m: 0,
                c_m: 0.0,
                threshold_margin: None,
                candidates: Vec::new(),
                verdict: DecisionVerdict::Minimal,
                chosen_cost: 0.0,
                margin: 0.0,
            },
        }
    }
}

impl DecisionSink for RecordSink {
    const ENABLED: bool = true;
    fn begin(&mut self, src: RouterId, dst: RouterId, capacity_bytes: u64) {
        self.rec.src = src;
        self.rec.dst = dst;
        self.rec.capacity_bytes = capacity_bytes;
    }
    fn minimal_cost(&mut self, first_hop: RouterId, q_m: u64, c_m: f64) {
        self.rec.min_first_hop = first_hop;
        self.rec.q_m = q_m;
        self.rec.c_m = c_m;
    }
    fn threshold_margin(&mut self, margin: f64) {
        self.rec.threshold_margin = Some(margin);
    }
    fn candidate(&mut self, cand: DecisionCandidate) {
        self.rec.candidates.push(cand);
    }
    fn verdict(&mut self, verdict: DecisionVerdict, chosen_cost: f64, margin: f64) {
        self.rec.verdict = verdict;
        self.rec.chosen_cost = chosen_cost;
        self.rec.margin = margin;
    }
}

/// A route policy bound to one network.
pub struct RoutePolicy {
    tables: MinimalTables,
    algorithm: Algorithm,
    vc_scheme: VcScheme,
    intermediates: Vec<RouterId>,
    /// Scale the indirect penalty by path-length ratio `L_I / L_M`
    /// (the Slim Fly cost rule; constant-`c` otherwise).
    scaled_penalty: bool,
    /// Router-graph diameter, bounding minimal path length.
    diameter: u8,
}

impl RoutePolicy {
    /// Builds a policy for `net`, deriving the VC scheme, intermediate set
    /// and penalty rule from the topology family as prescribed in §3.
    pub fn new(net: &Network, algorithm: Algorithm) -> Self {
        let (vc_scheme, intermediate_set, scaled) = match net.kind() {
            TopologyKind::SlimFly(_) => (VcScheme::HopIndex, IntermediateSet::AllRouters, true),
            TopologyKind::Mlfm(_)
            | TopologyKind::Oft(_)
            | TopologyKind::Sspt(_)
            | TopologyKind::FatTree2(_) => {
                (VcScheme::PhaseBased, IntermediateSet::EndpointRouters, false)
            }
            // HyperX and custom networks get the always-safe hop-indexed
            // scheme and unrestricted intermediates.
            _ => (VcScheme::HopIndex, IntermediateSet::AllRouters, false),
        };
        Self::with_overrides(net, algorithm, vc_scheme, intermediate_set, scaled)
    }

    /// Builds a fault-aware policy for a possibly degraded network: the
    /// tables are recomputed around the failures (so minimal routes are
    /// repaired wherever a path survives), and the VC scheme falls back
    /// to hop-indexed VCs over the *repaired* diameter — the VC label
    /// strictly increases along every route, so the repaired CDG stays
    /// acyclic regardless of how the failures warped the structure the
    /// family's phase-based scheme relied on. Unreachable pairs are data
    /// (see [`MinimalTables::unreachable_pairs`]), not panics.
    ///
    /// On a pristine network this is identical to [`RoutePolicy::new`].
    pub fn repair(net: &Network, algorithm: Algorithm) -> Self {
        if !net.is_degraded() {
            return Self::new(net, algorithm);
        }
        let (intermediate_set, scaled) = match net.kind() {
            TopologyKind::SlimFly(_) => (IntermediateSet::AllRouters, true),
            TopologyKind::Mlfm(_)
            | TopologyKind::Oft(_)
            | TopologyKind::Sspt(_)
            | TopologyKind::FatTree2(_) => (IntermediateSet::EndpointRouters, false),
            _ => (IntermediateSet::AllRouters, false),
        };
        Self::with_overrides(net, algorithm, VcScheme::HopIndex, intermediate_set, scaled)
    }

    /// Builds a policy with explicit scheme choices (ablations and tests).
    pub fn with_overrides(
        net: &Network,
        algorithm: Algorithm,
        vc_scheme: VcScheme,
        intermediate_set: IntermediateSet,
        scaled_penalty: bool,
    ) -> Self {
        let tables = MinimalTables::build_partial(net);
        let intermediates = match intermediate_set {
            IntermediateSet::AllRouters => (0..net.num_routers()).collect(),
            IntermediateSet::EndpointRouters => net.endpoint_routers(),
        };
        let diameter = tables.max_finite_dist();
        RoutePolicy {
            tables,
            algorithm,
            vc_scheme,
            intermediates,
            scaled_penalty,
            diameter,
        }
    }

    /// The minimal-route tables (shared with analysis code).
    pub fn tables(&self) -> &MinimalTables {
        &self.tables
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The VC scheme in force.
    pub fn vc_scheme(&self) -> VcScheme {
        self.vc_scheme
    }

    /// The routers eligible as Valiant intermediates.
    pub fn intermediates(&self) -> &[RouterId] {
        &self.intermediates
    }

    /// Router-graph diameter of the bound network (bounds minimal path
    /// length; indirect paths are at most twice this). On a degraded
    /// network this is the repaired diameter — the maximum over the
    /// *surviving* pairs.
    pub fn diameter(&self) -> u8 {
        self.diameter
    }

    /// True if the policy can deliver a packet from router `s` to router
    /// `d`: some minimal route survives (indirect routes compose two
    /// minimal segments, so they cannot rescue a pair with no minimal
    /// path). Always true on a connected network.
    #[inline]
    pub fn is_routable(&self, s: RouterId, d: RouterId) -> bool {
        s == d || self.tables.is_reachable(s, d)
    }

    /// Number of virtual channels the simulator must provision:
    /// SF needs 2 (minimal) / 4 (indirect-capable); MLFM and OFT need
    /// 1 / 2 (§3.4).
    pub fn num_vcs(&self) -> u8 {
        let indirect_capable = !matches!(self.algorithm, Algorithm::Minimal);
        match self.vc_scheme {
            VcScheme::HopIndex => {
                // `max(1)` guards the fully partitioned degenerate case
                // (repaired diameter 0), which preflight rejects anyway.
                if indirect_capable {
                    2 * self.diameter.max(1)
                } else {
                    self.diameter.max(1)
                }
            }
            VcScheme::PhaseBased => {
                if indirect_capable {
                    2
                } else {
                    1
                }
            }
            VcScheme::SingleVc => 1,
        }
    }

    /// VC for the `hop`-th link (0-based) of `choice`.
    #[inline]
    pub fn vc_for_hop(&self, choice: &RouteChoice, hop: usize) -> u8 {
        vc_for_hop(self.vc_scheme, choice, hop)
    }

    /// Chooses the route for a packet from router `src` to router `dst`
    /// (`src != dst`), consulting `occ` for adaptive decisions. Panics if
    /// no surviving route exists — use [`RoutePolicy::try_choose`] on
    /// degraded networks.
    pub fn choose<R: Rng>(
        &self,
        src: RouterId,
        dst: RouterId,
        occ: &impl OccupancyView,
        rng: &mut R,
    ) -> RouteChoice {
        self.try_choose(src, dst, occ, rng)
            .unwrap_or_else(|| panic!("no surviving route from router {src} to router {dst}"))
    }

    /// Fault-tolerant route selection: `None` when no route from `src` to
    /// `dst` survives the failures the tables were built around (the
    /// caller accounts the packet as unroutable instead of panicking).
    /// Indirect algorithms fall back to the repaired minimal route when
    /// no eligible intermediate survives.
    pub fn try_choose<R: Rng>(
        &self,
        src: RouterId,
        dst: RouterId,
        occ: &impl OccupancyView,
        rng: &mut R,
    ) -> Option<RouteChoice> {
        self.try_choose_with(src, dst, occ, rng, &mut NoSink)
    }

    /// Like [`RoutePolicy::try_choose`], but also returns the full
    /// [`DecisionRecord`] behind the choice. Both entry points run the
    /// same generic implementation — the recorder differs only in a sink
    /// whose disabled form compiles to nothing — so the rng stream, and
    /// therefore every seeded simulation, is identical with recording on
    /// or off (pinned by tests in `d2net-sim`).
    pub fn try_choose_recorded<R: Rng>(
        &self,
        src: RouterId,
        dst: RouterId,
        occ: &impl OccupancyView,
        rng: &mut R,
    ) -> Option<(RouteChoice, DecisionRecord)> {
        let mut sink = RecordSink::new();
        let choice = self.try_choose_with(src, dst, occ, rng, &mut sink)?;
        Some((choice, sink.rec))
    }

    fn try_choose_with<R: Rng, S: DecisionSink>(
        &self,
        src: RouterId,
        dst: RouterId,
        occ: &impl OccupancyView,
        rng: &mut R,
        sink: &mut S,
    ) -> Option<RouteChoice> {
        assert_ne!(src, dst, "intra-router traffic never enters the network");
        if !self.tables.is_reachable(src, dst) {
            return None;
        }
        if S::ENABLED {
            sink.begin(src, dst, occ.capacity_bytes());
        }
        Some(match self.algorithm {
            Algorithm::Minimal => {
                let ch = self.minimal_choice(src, dst, rng);
                if S::ENABLED {
                    sink.minimal_cost(ch.path.routers()[1], 0, 0.0);
                    sink.verdict(DecisionVerdict::ForcedMinimal, 0.0, 0.0);
                }
                ch
            }
            Algorithm::Valiant => {
                let ch = self.valiant_choice(src, dst, rng);
                if S::ENABLED {
                    sink.minimal_cost(ch.path.routers()[1], 0, 0.0);
                    if ch.indirect {
                        sink.candidate(DecisionCandidate {
                            intermediate: ch.path.routers()[ch.phase_hops as usize],
                            first_hop: ch.path.routers()[1],
                            occupancy_bytes: 0,
                            penalty: 0.0,
                            cost: 0.0,
                        });
                        sink.verdict(DecisionVerdict::ForcedIndirect, 0.0, 0.0);
                    } else {
                        sink.verdict(DecisionVerdict::FallbackMinimal, 0.0, 0.0);
                    }
                }
                ch
            }
            Algorithm::Ugal { n_i, c, threshold } => {
                self.ugal_choice(src, dst, n_i, c, threshold, occ, rng, sink)
            }
            Algorithm::UgalG { n_i, c } => self.ugal_g_choice(src, dst, n_i, c, occ, rng, sink),
        })
    }

    /// Sum of output-port occupancies along every link of `path`.
    fn path_cost(&self, path: &RoutePath, occ: &impl OccupancyView) -> u64 {
        path.links().map(|(a, b)| occ.occupancy_bytes(a, b)).sum()
    }

    /// The idealized global UGAL decision: whole-path congestion sums.
    #[allow(clippy::too_many_arguments)]
    fn ugal_g_choice<R: Rng, S: DecisionSink>(
        &self,
        src: RouterId,
        dst: RouterId,
        n_i: usize,
        c: f64,
        occ: &impl OccupancyView,
        rng: &mut R,
        sink: &mut S,
    ) -> RouteChoice {
        let min_path = self.tables.sample_min_path(src, dst, rng);
        let q_m = self.path_cost(&min_path, occ);
        let c_m = q_m as f64;
        if S::ENABLED {
            sink.minimal_cost(min_path.routers()[1], q_m, c_m);
        }
        let mut best: Option<(f64, RouteChoice)> = None;
        for _ in 0..n_i {
            let Some(mid) = self.sample_intermediate(src, dst, rng) else {
                break;
            };
            let cand = self.indirect_path(src, mid, dst, rng);
            let q_i = self.path_cost(&cand.path, occ);
            let cost = c * q_i as f64;
            if S::ENABLED {
                sink.candidate(DecisionCandidate {
                    intermediate: mid,
                    first_hop: cand.path.routers()[1],
                    occupancy_bytes: q_i,
                    penalty: c,
                    cost,
                });
            }
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, cand));
            }
        }
        let best_cost = best.as_ref().map(|(b, _)| *b);
        match best {
            Some((cost, cand)) if cost < c_m => {
                if S::ENABLED {
                    sink.verdict(DecisionVerdict::Indirect, cost, c_m - cost);
                }
                cand
            }
            _ => {
                if S::ENABLED {
                    sink.verdict(
                        DecisionVerdict::Minimal,
                        c_m,
                        best_cost.map_or(0.0, |b| c_m - b),
                    );
                }
                RouteChoice {
                    phase_hops: min_path.num_hops() as u8,
                    path: min_path,
                    indirect: false,
                }
            }
        }
    }

    fn minimal_choice<R: Rng>(&self, src: RouterId, dst: RouterId, rng: &mut R) -> RouteChoice {
        let path = self.tables.sample_min_path(src, dst, rng);
        RouteChoice {
            phase_hops: path.num_hops() as u8,
            path,
            indirect: false,
        }
    }

    /// Samples an intermediate router distinct from both endpoints that
    /// can actually carry an indirect route: both minimal segments must
    /// survive and the composed path must fit a [`RoutePath`]. On a
    /// pristine network the validity filter accepts every `m != src, dst`,
    /// so the rejection-sampling draw sequence — and with it every seeded
    /// simulation — is identical to the pre-fault behavior. `None` when no
    /// eligible intermediate exists (degraded networks only).
    fn sample_intermediate<R: Rng>(
        &self,
        src: RouterId,
        dst: RouterId,
        rng: &mut R,
    ) -> Option<RouterId> {
        let valid = |m: RouterId| {
            m != src
                && m != dst
                && self.tables.is_reachable(src, m)
                && self.tables.is_reachable(m, dst)
                && (self.tables.dist(src, m) as usize + self.tables.dist(m, dst) as usize)
                    < MAX_PATH_ROUTERS
        };
        for _ in 0..4 * self.intermediates.len() {
            let i = self.intermediates[rng.gen_range(0..self.intermediates.len())];
            if valid(i) {
                return Some(i);
            }
        }
        // Heavily degraded networks can leave few (or no) valid
        // intermediates; fall back to a deterministic scan in id order.
        self.intermediates.iter().copied().find(|&m| valid(m))
    }

    fn indirect_path<R: Rng>(
        &self,
        src: RouterId,
        mid: RouterId,
        dst: RouterId,
        rng: &mut R,
    ) -> RouteChoice {
        let head = self.tables.sample_min_path(src, mid, rng);
        let tail = self.tables.sample_min_path(mid, dst, rng);
        RouteChoice {
            phase_hops: head.num_hops() as u8,
            path: head.join(&tail),
            indirect: true,
        }
    }

    fn valiant_choice<R: Rng>(&self, src: RouterId, dst: RouterId, rng: &mut R) -> RouteChoice {
        match self.sample_intermediate(src, dst, rng) {
            Some(mid) => self.indirect_path(src, mid, dst, rng),
            // No surviving intermediate (degraded network): the repaired
            // minimal route is the only way through.
            None => self.minimal_choice(src, dst, rng),
        }
    }

    /// The UGAL-L decision (§3.3): cost the minimal path as `CM = qM`, and
    /// each indirect candidate as `CI = penalty · qI`, where the penalty is
    /// `(L_I / L_M) · c` for the Slim Fly and the constant `c` otherwise;
    /// ties favor the minimal path. With a threshold `T`, the packet is
    /// routed minimally outright while `qM < T · capacity`.
    #[allow(clippy::too_many_arguments)]
    fn ugal_choice<R: Rng, S: DecisionSink>(
        &self,
        src: RouterId,
        dst: RouterId,
        n_i: usize,
        c: f64,
        threshold: Option<f64>,
        occ: &impl OccupancyView,
        rng: &mut R,
        sink: &mut S,
    ) -> RouteChoice {
        // Among equal-length minimal paths, take the least-occupied first
        // hop (footnote 1 in the paper).
        let first_hops = self.tables.first_hops(src, dst);
        let (&best_first, q_m) = first_hops
            .iter()
            .map(|n| (n, occ.occupancy_bytes(src, *n)))
            .min_by_key(|&(_, q)| q)
            .expect("reachable pair implies at least one first hop");
        if S::ENABLED {
            sink.minimal_cost(best_first, q_m, q_m as f64);
        }

        let min_choice = |rng: &mut R| {
            let mut path = RoutePath::new(src);
            path.push(best_first);
            if best_first != dst {
                let rest = self.tables.sample_min_path(best_first, dst, rng);
                path = path.join(&rest);
            }
            RouteChoice {
                phase_hops: path.num_hops() as u8,
                path,
                indirect: false,
            }
        };

        if let Some(t) = threshold {
            let limit = t * occ.capacity_bytes() as f64;
            if S::ENABLED {
                sink.threshold_margin(limit - q_m as f64);
            }
            if (q_m as f64) < limit {
                if S::ENABLED {
                    sink.verdict(DecisionVerdict::ForcedMinimal, q_m as f64, 0.0);
                }
                return min_choice(rng);
            }
        }

        let l_m = self.tables.dist(src, dst) as f64;
        let c_m = q_m as f64;
        let mut best: Option<(f64, RouterId)> = None;
        for _ in 0..n_i {
            let Some(mid) = self.sample_intermediate(src, dst, rng) else {
                break;
            };
            let l_i = (self.tables.dist(src, mid) + self.tables.dist(mid, dst)) as f64;
            let penalty = if self.scaled_penalty { l_i / l_m * c } else { c };
            let first = {
                let hops = self.tables.first_hops(src, mid);
                hops[rng.gen_range(0..hops.len())]
            };
            let q_i = occ.occupancy_bytes(src, first);
            let cost = penalty * q_i as f64;
            if S::ENABLED {
                sink.candidate(DecisionCandidate {
                    intermediate: mid,
                    first_hop: first,
                    occupancy_bytes: q_i,
                    penalty,
                    cost,
                });
            }
            if best.is_none_or(|(b, _)| cost < b) {
                best = Some((cost, mid));
            }
        }
        match best {
            // Strict inequality: ties go to the shorter minimal route.
            Some((cost, mid)) if cost < c_m => {
                if S::ENABLED {
                    sink.verdict(DecisionVerdict::Indirect, cost, c_m - cost);
                }
                self.indirect_path(src, mid, dst, rng)
            }
            _ => {
                if S::ENABLED {
                    sink.verdict(
                        DecisionVerdict::Minimal,
                        c_m,
                        best.map_or(0.0, |(b, _)| c_m - b),
                    );
                }
                min_choice(rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2net_topo::{mlfm, oft, slim_fly, SlimFlyP};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct MapOccupancy {
        map: HashMap<(RouterId, RouterId), u64>,
        cap: u64,
    }

    impl OccupancyView for MapOccupancy {
        fn occupancy_bytes(&self, r: RouterId, n: RouterId) -> u64 {
            *self.map.get(&(r, n)).unwrap_or(&0)
        }
        fn capacity_bytes(&self) -> u64 {
            self.cap
        }
    }

    #[test]
    fn minimal_routes_have_minimal_length() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let mut rng = SmallRng::seed_from_u64(1);
        for s in 0..net.num_routers() {
            for d in 0..net.num_routers() {
                if s == d {
                    continue;
                }
                let c = policy.choose(s, d, &ZeroOccupancy, &mut rng);
                assert!(!c.indirect);
                assert_eq!(c.path.num_hops(), policy.tables().dist(s, d) as usize);
            }
        }
    }

    #[test]
    fn valiant_on_sspt_is_exactly_four_hops() {
        // §3.2: restricting intermediates to endpoint routers pins MLFM and
        // OFT indirect paths at 4 hops.
        for net in [mlfm(3), oft(3)] {
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            let mut rng = SmallRng::seed_from_u64(2);
            let eps = net.endpoint_routers();
            for &s in eps.iter().take(6) {
                for &d in eps.iter().rev().take(6) {
                    if s == d {
                        continue;
                    }
                    for _ in 0..8 {
                        let c = policy.choose(s, d, &ZeroOccupancy, &mut rng);
                        assert!(c.indirect);
                        assert_eq!(c.path.num_hops(), 4, "{}", net.name());
                        assert_eq!(c.phase_hops, 2);
                        // Intermediate must carry endpoints.
                        let mid = c.path.routers()[2];
                        assert!(net.nodes_at(mid) > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn valiant_on_sf_is_two_to_four_hops() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let s = rng.gen_range(0..net.num_routers());
            let d = rng.gen_range(0..net.num_routers());
            if s == d {
                continue;
            }
            let c = policy.choose(s, d, &ZeroOccupancy, &mut rng);
            assert!((2..=4).contains(&c.path.num_hops()));
        }
    }

    #[test]
    fn vc_budgets_match_section_3_4() {
        let sf = slim_fly(5, SlimFlyP::Floor);
        assert_eq!(RoutePolicy::new(&sf, Algorithm::Minimal).num_vcs(), 2);
        assert_eq!(RoutePolicy::new(&sf, Algorithm::Valiant).num_vcs(), 4);
        for net in [mlfm(3), oft(3)] {
            assert_eq!(RoutePolicy::new(&net, Algorithm::Minimal).num_vcs(), 1);
            assert_eq!(RoutePolicy::new(&net, Algorithm::Valiant).num_vcs(), 2);
            assert_eq!(
                RoutePolicy::new(
                    &net,
                    Algorithm::Ugal {
                        n_i: 4,
                        c: 2.0,
                        threshold: None
                    }
                )
                .num_vcs(),
                2
            );
        }
    }

    #[test]
    fn vc_assignment_follows_scheme() {
        let sf = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(&sf, Algorithm::Valiant);
        let mut rng = SmallRng::seed_from_u64(4);
        let c = policy.choose(0, 30, &ZeroOccupancy, &mut rng);
        for hop in 0..c.path.num_hops() {
            assert_eq!(policy.vc_for_hop(&c, hop), hop as u8);
        }

        let net = mlfm(3);
        let policy = RoutePolicy::new(&net, Algorithm::Valiant);
        let c = policy.choose(0, 5, &ZeroOccupancy, &mut rng);
        assert_eq!(c.path.num_hops(), 4);
        assert_eq!(policy.vc_for_hop(&c, 0), 0);
        assert_eq!(policy.vc_for_hop(&c, 1), 0);
        assert_eq!(policy.vc_for_hop(&c, 2), 1);
        assert_eq!(policy.vc_for_hop(&c, 3), 1);
    }

    #[test]
    fn ugal_prefers_minimal_when_uncongested() {
        let net = mlfm(4);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = policy.choose(0, 6, &ZeroOccupancy, &mut rng);
            assert!(!c.indirect, "zero occupancy must keep traffic minimal");
            assert_eq!(c.path.num_hops(), 2);
        }
    }

    #[test]
    fn ugal_diverts_when_minimal_is_congested() {
        let net = mlfm(4);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 1.0,
                threshold: None,
            },
        );
        // LR 0 and LR 6 (different columns): single minimal path via one GR.
        let the_gr = net.common_neighbors(0, 6)[0];
        let occ = MapOccupancy {
            map: HashMap::from([((0, the_gr), 100_000u64)]),
            cap: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let diverted = (0..200)
            .filter(|_| policy.choose(0, 6, &occ, &mut rng).indirect)
            .count();
        assert!(
            diverted > 150,
            "congested minimal port must push traffic indirect, got {diverted}/200"
        );
    }

    #[test]
    fn threshold_forces_minimal_below_t() {
        let net = mlfm(4);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 0.0, // free indirect paths: generic UGAL would always divert
                threshold: Some(0.10),
            },
        );
        let the_gr = net.common_neighbors(0, 6)[0];
        // Occupancy just below 10% of capacity: stay minimal.
        let occ = MapOccupancy {
            map: HashMap::from([((0, the_gr), 9_999u64)]),
            cap: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            assert!(!policy.choose(0, 6, &occ, &mut rng).indirect);
        }
        // Above the threshold with c = 0, indirect becomes free and wins.
        let occ = MapOccupancy {
            map: HashMap::from([((0, the_gr), 10_001u64)]),
            cap: 100_000,
        };
        let diverted = (0..50)
            .filter(|_| policy.choose(0, 6, &occ, &mut rng).indirect)
            .count();
        assert!(diverted == 50);
    }

    #[test]
    fn ugal_g_sees_downstream_congestion_that_ugal_l_misses() {
        // Congest only the SECOND hop of the minimal route: local UGAL
        // (first-port cost) keeps routing into the jam, global UGAL
        // detects it and diverts.
        let net = mlfm(4);
        let the_gr = net.common_neighbors(0, 6)[0];
        let occ = MapOccupancy {
            map: HashMap::from([((the_gr, 6u32), 90_000u64)]),
            cap: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let local = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 4,
                c: 1.0,
                threshold: None,
            },
        );
        let global = RoutePolicy::new(&net, Algorithm::UgalG { n_i: 4, c: 1.0 });
        let local_diverted = (0..100)
            .filter(|_| local.choose(0, 6, &occ, &mut rng).indirect)
            .count();
        let global_diverted = (0..100)
            .filter(|_| global.choose(0, 6, &occ, &mut rng).indirect)
            .count();
        assert!(local_diverted < 10, "UGAL-L cannot see hop 2: {local_diverted}/100");
        assert!(global_diverted > 90, "UGAL-G must divert: {global_diverted}/100");
    }

    #[test]
    fn ugal_g_stays_minimal_when_clear() {
        let net = oft(3);
        let policy = RoutePolicy::new(&net, Algorithm::UgalG { n_i: 4, c: 2.0 });
        let mut rng = SmallRng::seed_from_u64(12);
        let eps = net.endpoint_routers();
        for _ in 0..50 {
            let c = policy.choose(eps[0], eps[5], &ZeroOccupancy, &mut rng);
            assert!(!c.indirect);
        }
    }

    #[test]
    fn generic_ugal_diverts_on_empty_indirect_buffers() {
        // The drawback the paper calls out for generic UGAL: if some
        // indirect candidate's first buffer is empty, qI = 0 makes its cost
        // zero regardless of c, and the (longer) indirect route is taken
        // even though the minimal buffer is barely occupied.
        let net = slim_fly(5, SlimFlyP::Floor);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal {
                n_i: 8,
                c: 1000.0,
                threshold: None,
            },
        );
        let mut rng = SmallRng::seed_from_u64(8);
        let (s, d) = (0u32, {
            (1..net.num_routers())
                .find(|&d| !net.are_adjacent(0, d))
                .unwrap()
        });
        let mut map = HashMap::new();
        for &n in policy.tables().first_hops(s, d) {
            map.insert((s, n), 10u64);
        }
        let occ = MapOccupancy { map, cap: 100_000 };
        let diverted = (0..100)
            .filter(|_| policy.choose(s, d, &occ, &mut rng).indirect)
            .count();
        assert!(diverted > 80, "generic UGAL should divert here, got {diverted}/100");
    }

    #[test]
    fn sf_penalty_scales_with_path_length_ratio() {
        // With every port equally occupied, the scaled penalty
        // (L_I/L_M)·cSF decides: a large cSF keeps traffic minimal, a tiny
        // one lets the indirect candidates win on cost.
        let net = slim_fly(5, SlimFlyP::Floor);
        let mut rng = SmallRng::seed_from_u64(9);
        let (s, d) = (0u32, {
            (1..net.num_routers())
                .find(|&d| !net.are_adjacent(0, d))
                .unwrap()
        });
        let mut map = HashMap::new();
        for &n in net.neighbors(s) {
            map.insert((s, n), 10u64);
        }
        let occ = MapOccupancy { map, cap: 100_000 };
        for (c_sf, expect_indirect) in [(4.0, false), (0.001, true)] {
            let policy = RoutePolicy::new(
                &net,
                Algorithm::Ugal {
                    n_i: 8,
                    c: c_sf,
                    threshold: None,
                },
            );
            for _ in 0..50 {
                assert_eq!(
                    policy.choose(s, d, &occ, &mut rng).indirect,
                    expect_indirect,
                    "cSF = {c_sf}"
                );
            }
        }
    }

    #[test]
    fn repair_on_pristine_network_matches_new() {
        let net = slim_fly(5, SlimFlyP::Floor);
        for algo in [
            Algorithm::Minimal,
            Algorithm::Valiant,
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
        ] {
            let a = RoutePolicy::new(&net, algo);
            let b = RoutePolicy::repair(&net, algo);
            assert_eq!(a.vc_scheme(), b.vc_scheme());
            assert_eq!(a.num_vcs(), b.num_vcs());
            assert_eq!(a.diameter(), b.diameter());
            let mut ra = SmallRng::seed_from_u64(33);
            let mut rb = SmallRng::seed_from_u64(33);
            for _ in 0..100 {
                let s = ra.gen_range(0..net.num_routers());
                let d = ra.gen_range(0..net.num_routers());
                let _ = rb.gen_range(0..net.num_routers());
                let _ = rb.gen_range(0..net.num_routers());
                if s == d {
                    continue;
                }
                assert_eq!(
                    a.choose(s, d, &ZeroOccupancy, &mut ra),
                    b.choose(s, d, &ZeroOccupancy, &mut rb),
                    "pristine repair must not perturb seeded routing"
                );
            }
        }
    }

    #[test]
    fn repaired_routes_avoid_failed_links() {
        for (net, algo) in [
            (slim_fly(5, SlimFlyP::Floor), Algorithm::Valiant),
            (mlfm(4), Algorithm::Valiant),
            (
                oft(4),
                Algorithm::Ugal {
                    n_i: 4,
                    c: 2.0,
                    threshold: None,
                },
            ),
        ] {
            let faults = d2net_topo::FaultSet::sample_links(&net, 0.08, 9);
            let deg = net.degrade(&faults);
            let policy = RoutePolicy::repair(&deg, algo);
            assert_eq!(policy.vc_scheme(), VcScheme::HopIndex);
            let mut rng = SmallRng::seed_from_u64(10);
            let mut routed = 0u32;
            for _ in 0..300 {
                let s = rng.gen_range(0..deg.num_routers());
                let d = rng.gen_range(0..deg.num_routers());
                if s == d {
                    continue;
                }
                match policy.try_choose(s, d, &ZeroOccupancy, &mut rng) {
                    Some(c) => {
                        routed += 1;
                        assert_eq!(c.path.src(), s);
                        assert_eq!(c.path.dst(), d);
                        for (a, b) in c.path.links() {
                            assert!(deg.are_adjacent(a, b), "route crosses a failed link");
                        }
                        for h in 0..c.path.num_hops() {
                            assert!(policy.vc_for_hop(&c, h) < policy.num_vcs());
                        }
                    }
                    None => assert!(!policy.is_routable(s, d)),
                }
            }
            assert!(routed > 200, "{}: most pairs must survive 8% faults", net.name());
        }
    }

    #[test]
    fn router_failure_makes_pairs_unroutable_not_panic() {
        let net = mlfm(3);
        let mut faults = d2net_topo::FaultSet::new();
        faults.fail_router(0);
        let deg = net.degrade(&faults);
        let policy = RoutePolicy::repair(&deg, Algorithm::Minimal);
        let mut rng = SmallRng::seed_from_u64(5);
        // Router 0 is isolated: nothing in, nothing out.
        for d in 1..deg.num_routers() {
            assert!(!policy.is_routable(0, d));
            assert!(policy.try_choose(0, d, &ZeroOccupancy, &mut rng).is_none());
            assert!(policy.try_choose(d, 0, &ZeroOccupancy, &mut rng).is_none());
        }
        // Everyone else still reaches everyone else (MLFM survives one
        // router loss).
        for s in 1..deg.num_routers() {
            for d in 1..deg.num_routers() {
                if s != d {
                    assert!(policy.is_routable(s, d));
                }
            }
        }
        assert_eq!(policy.tables().unreachable_pairs(), 2 * (net.num_routers() as u64 - 1));
    }

    #[test]
    fn recorded_choice_is_rng_neutral_and_identical() {
        // The ledger's core guarantee: try_choose_recorded makes the same
        // choice AND leaves the rng in the same state as try_choose.
        let net = mlfm(4);
        let the_gr = net.common_neighbors(0, 6)[0];
        let occ = MapOccupancy {
            map: HashMap::from([((0, the_gr), 80_000u64), ((the_gr, 6u32), 90_000u64)]),
            cap: 100_000,
        };
        for algo in [
            Algorithm::Minimal,
            Algorithm::Valiant,
            Algorithm::Ugal { n_i: 4, c: 1.0, threshold: None },
            Algorithm::Ugal { n_i: 4, c: 1.0, threshold: Some(0.25) },
            Algorithm::UgalG { n_i: 4, c: 1.0 },
        ] {
            let policy = RoutePolicy::new(&net, algo);
            let mut ra = SmallRng::seed_from_u64(77);
            let mut rb = SmallRng::seed_from_u64(77);
            for _ in 0..100 {
                let plain = policy.choose(0, 6, &occ, &mut ra);
                let (recorded, rec) = policy
                    .try_choose_recorded(0, 6, &occ, &mut rb)
                    .expect("pristine network routes every pair");
                assert_eq!(plain, recorded, "{algo:?}");
                assert_eq!(rec.src, 0);
                assert_eq!(rec.dst, 6);
                assert_eq!(rec.verdict.is_indirect(), recorded.indirect, "{algo:?}");
            }
            // Post-decision draws must coincide: no extra rng consumption.
            for _ in 0..8 {
                assert_eq!(
                    ra.gen_range(0..u64::MAX),
                    rb.gen_range(0..u64::MAX),
                    "{algo:?}"
                );
            }
        }
    }

    #[test]
    fn decision_records_expose_hop2_blindness() {
        // The forensic version of `ugal_g_sees_downstream_congestion...`:
        // the records themselves show WHY the variants diverge — UGAL-L
        // costs the minimal route at its empty first port (q_m = 0) and
        // stays, UGAL-G sums the jammed second hop into q_m and diverts.
        let net = mlfm(4);
        let the_gr = net.common_neighbors(0, 6)[0];
        let occ = MapOccupancy {
            map: HashMap::from([((the_gr, 6u32), 90_000u64)]),
            cap: 100_000,
        };
        let local = RoutePolicy::new(&net, Algorithm::Ugal { n_i: 4, c: 1.0, threshold: None });
        let global = RoutePolicy::new(&net, Algorithm::UgalG { n_i: 4, c: 1.0 });
        let mut rng = SmallRng::seed_from_u64(11);
        let (_, lrec) = local.try_choose_recorded(0, 6, &occ, &mut rng).unwrap();
        let (_, grec) = global.try_choose_recorded(0, 6, &occ, &mut rng).unwrap();
        assert_eq!(lrec.q_m, 0, "UGAL-L sees only the empty first port");
        assert_eq!(lrec.verdict, DecisionVerdict::Minimal);
        assert_eq!(lrec.candidates.len(), 4);
        assert_eq!(grec.q_m, 90_000, "UGAL-G sums the jammed second hop");
        assert_eq!(grec.verdict, DecisionVerdict::Indirect);
        assert!(grec.margin > 0.0, "divergence margin must be positive: {}", grec.margin);
        assert!(grec.chosen_cost < grec.c_m);
    }

    #[test]
    fn threshold_decisions_record_their_margin() {
        let net = mlfm(4);
        let policy = RoutePolicy::new(
            &net,
            Algorithm::Ugal { n_i: 4, c: 0.0, threshold: Some(0.10) },
        );
        let the_gr = net.common_neighbors(0, 6)[0];
        let occ = MapOccupancy {
            map: HashMap::from([((0, the_gr), 9_000u64)]),
            cap: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(13);
        let (ch, rec) = policy.try_choose_recorded(0, 6, &occ, &mut rng).unwrap();
        assert!(!ch.indirect);
        assert_eq!(rec.verdict, DecisionVerdict::ForcedMinimal);
        assert_eq!(rec.threshold_margin, Some(10_000.0 - 9_000.0));
        assert!(rec.candidates.is_empty(), "threshold short-circuits before sampling");
    }

    #[test]
    #[should_panic(expected = "no surviving route")]
    fn choose_panics_only_when_unroutable() {
        let net = mlfm(3);
        let mut faults = d2net_topo::FaultSet::new();
        faults.fail_router(0);
        let deg = net.degrade(&faults);
        let policy = RoutePolicy::repair(&deg, Algorithm::Minimal);
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = policy.choose(0, 1, &ZeroOccupancy, &mut rng);
    }
}
