//! # d2net-routing
//!
//! Routing and deadlock avoidance for the diameter-two topologies
//! (paper §3):
//!
//! - [`tables::MinimalTables`] — all-pairs minimal distances and first-hop
//!   choice sets, precomputed once per network;
//! - [`policy::RoutePolicy`] — oblivious minimal (MIN), oblivious indirect
//!   random (INR / Valiant) and local UGAL adaptive route selection
//!   (generic and thresholded), with the per-topology penalty rules;
//! - [`policy::VcScheme`] — the paper's VC assignments: hop-indexed for
//!   the Slim Fly (2 VCs minimal / 4 indirect), phase-based for the SSPTs
//!   (1 VC minimal / 2 indirect);
//! - [`cdg`] — channel-dependency-graph construction and acyclicity
//!   checking to *prove* the schemes deadlock-free on concrete instances.

pub mod cdg;
pub mod path;
pub mod policy;
pub mod tables;

pub use cdg::{
    all_policy_routes, build_cdg, enumerate_min_paths, try_build_cdg, ChannelError, ChannelGraph,
};
pub use path::{RoutePath, MAX_PATH_ROUTERS};
pub use policy::{
    vc_for_hop, Algorithm, DecisionCandidate, DecisionRecord, DecisionVerdict, IntermediateSet,
    OccupancyView, RouteChoice, RoutePolicy, VcScheme, ZeroOccupancy,
};
pub use tables::{MinimalTables, UNREACHABLE};

#[cfg(test)]
mod proptests {
    use super::*;
    use d2net_topo::{mlfm, oft, slim_fly, Network, SlimFlyP};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn nets() -> impl Strategy<Value = Network> {
        prop::sample::select(vec![0usize, 1, 2]).prop_map(|i| match i {
            0 => slim_fly(5, SlimFlyP::Floor),
            1 => mlfm(3),
            _ => oft(3),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn chosen_routes_are_walks_in_the_graph(net in nets(), seed in 0u64..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            for algo in [
                Algorithm::Minimal,
                Algorithm::Valiant,
                Algorithm::Ugal { n_i: 2, c: 2.0, threshold: Some(0.1) },
            ] {
                let policy = RoutePolicy::new(&net, algo);
                let eps = net.endpoint_routers();
                let s = eps[seed as usize % eps.len()];
                let d = eps[(seed as usize * 7 + 1) % eps.len()];
                if s == d { continue; }
                let c = policy.choose(s, d, &ZeroOccupancy, &mut rng);
                prop_assert_eq!(c.path.src(), s);
                prop_assert_eq!(c.path.dst(), d);
                for (a, b) in c.path.links() {
                    prop_assert!(net.are_adjacent(a, b));
                }
                if !c.indirect {
                    prop_assert_eq!(c.path.num_hops() as u8, policy.tables().dist(s, d));
                }
                // VC labels stay within the provisioned budget.
                for h in 0..c.path.num_hops() {
                    prop_assert!(policy.vc_for_hop(&c, h) < policy.num_vcs());
                }
            }
        }

        #[test]
        fn indirect_paths_visit_a_real_intermediate(net in nets(), seed in 0u64..1000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let policy = RoutePolicy::new(&net, Algorithm::Valiant);
            let eps = net.endpoint_routers();
            let s = eps[seed as usize % eps.len()];
            let d = eps[(seed as usize * 13 + 2) % eps.len()];
            if s == d { return Ok(()); }
            let c = policy.choose(s, d, &ZeroOccupancy, &mut rng);
            prop_assert!(c.indirect);
            let mid = c.path.routers()[c.phase_hops as usize];
            prop_assert!(mid != s && mid != d);
        }
    }
}
