//! Precomputed all-pairs minimal-distance and first-hop tables.
//!
//! Built once per network with BFS from every router; afterwards every
//! routing query is an O(1) index into flat arrays (a CSR layout holds the
//! variable-length first-hop choice lists).

use crate::path::RoutePath;
use d2net_topo::{Network, RouterId};
use rand::Rng;

/// All-pairs minimal routing data for one network.
#[derive(Debug, Clone)]
pub struct MinimalTables {
    r: usize,
    /// `dist[s * r + d]` = minimal hop count between routers `s` and `d`.
    dist: Vec<u8>,
    /// CSR offsets into `first_hops`, one slot per `(s, d)` pair.
    offsets: Vec<u32>,
    /// Concatenated first-hop choice lists.
    first_hops: Vec<RouterId>,
}

/// Distance sentinel for an unreachable router pair in a
/// [`MinimalTables`] built with [`MinimalTables::build_partial`].
pub const UNREACHABLE: u8 = u8::MAX;

impl MinimalTables {
    /// Builds tables for `net`. Cost: one BFS per router plus an
    /// O(R² · degree) first-hop scan. Panics if the router graph is
    /// disconnected; see [`MinimalTables::build_partial`] for the
    /// fault-tolerant variant.
    pub fn build(net: &Network) -> Self {
        let t = Self::build_partial(net);
        assert!(t.unreachable_pairs() == 0, "network is disconnected");
        t
    }

    /// Builds tables for a possibly disconnected (e.g. degraded) network:
    /// unreachable pairs get distance [`UNREACHABLE`] and an empty
    /// first-hop list, reported as data via
    /// [`MinimalTables::unreachable_pairs`] instead of a panic.
    pub fn build_partial(net: &Network) -> Self {
        let r = net.num_routers() as usize;
        let mut dist = vec![0u8; r * r];
        for s in 0..r as u32 {
            let d = net.bfs_distances(s);
            for (t, &x) in d.iter().enumerate() {
                dist[s as usize * r + t] = if x >= UNREACHABLE as u32 {
                    UNREACHABLE
                } else {
                    x as u8
                };
            }
        }
        let mut offsets = Vec::with_capacity(r * r + 1);
        let mut first_hops = Vec::new();
        offsets.push(0u32);
        for s in 0..r {
            for d in 0..r {
                if s != d && dist[s * r + d] != UNREACHABLE {
                    let target = dist[s * r + d] - 1;
                    for &n in net.neighbors(s as u32) {
                        if dist[n as usize * r + d] == target {
                            first_hops.push(n);
                        }
                    }
                }
                offsets.push(first_hops.len() as u32);
            }
        }
        MinimalTables {
            r,
            dist,
            offsets,
            first_hops,
        }
    }

    /// True if a minimal route from `s` to `d` exists.
    #[inline]
    pub fn is_reachable(&self, s: RouterId, d: RouterId) -> bool {
        self.dist(s, d) != UNREACHABLE
    }

    /// Number of ordered router pairs (`s != d`) with no surviving route.
    pub fn unreachable_pairs(&self) -> u64 {
        self.dist.iter().filter(|&&d| d == UNREACHABLE).count() as u64
    }

    /// The largest finite distance in the table — the repaired diameter
    /// of a degraded network (0 for a single router or a fully
    /// partitioned table).
    pub fn max_finite_dist(&self) -> u8 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.r
    }

    /// Minimal hop count between `s` and `d`.
    #[inline]
    pub fn dist(&self, s: RouterId, d: RouterId) -> u8 {
        self.dist[s as usize * self.r + d as usize]
    }

    /// Neighbors of `s` that begin a minimal path to `d` (empty iff `s == d`).
    #[inline]
    pub fn first_hops(&self, s: RouterId, d: RouterId) -> &[RouterId] {
        let idx = s as usize * self.r + d as usize;
        let (a, b) = (self.offsets[idx] as usize, self.offsets[idx + 1] as usize);
        &self.first_hops[a..b]
    }

    /// Number of distinct minimal paths from `s` to `d`, counting full
    /// paths (for diameter-two pairs this equals the first-hop count).
    pub fn minimal_path_count(&self, s: RouterId, d: RouterId) -> usize {
        if s == d {
            return 0;
        }
        if self.dist(s, d) <= 2 {
            self.first_hops(s, d).len()
        } else {
            // General case: product along the DAG, summed recursively.
            self.first_hops(s, d)
                .iter()
                .map(|&n| if n == d { 1 } else { self.minimal_path_count(n, d) })
                .sum()
        }
    }

    /// Samples one minimal path from `s` to `d`, choosing uniformly among
    /// first hops at every step (paper §3.1: "select one of them at
    /// random").
    pub fn sample_min_path<R: Rng>(&self, s: RouterId, d: RouterId, rng: &mut R) -> RoutePath {
        let mut path = RoutePath::new(s);
        let mut cur = s;
        while cur != d {
            let hops = self.first_hops(cur, d);
            let next = hops[rng.gen_range(0..hops.len())];
            path.push(next);
            cur = next;
        }
        path
    }

    /// The unique minimal path when `s` and `d` are joined by exactly one;
    /// `None` if the pair has diversity > 1 (or `s == d`).
    pub fn unique_min_path(&self, s: RouterId, d: RouterId) -> Option<RoutePath> {
        if s == d {
            return None;
        }
        let mut path = RoutePath::new(s);
        let mut cur = s;
        while cur != d {
            let hops = self.first_hops(cur, d);
            if hops.len() != 1 {
                return None;
            }
            path.push(hops[0]);
            cur = hops[0];
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2net_topo::{mlfm, oft, slim_fly, SlimFlyP};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distances_match_bfs_on_slim_fly() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let t = MinimalTables::build(&net);
        for s in 0..net.num_routers() {
            let bfs = net.bfs_distances(s);
            for d in 0..net.num_routers() {
                assert_eq!(t.dist(s, d) as u32, bfs[d as usize]);
            }
        }
    }

    #[test]
    fn first_hops_advance_toward_destination() {
        let net = mlfm(3);
        let t = MinimalTables::build(&net);
        for s in 0..net.num_routers() {
            for d in 0..net.num_routers() {
                if s == d {
                    assert!(t.first_hops(s, d).is_empty());
                    continue;
                }
                let hops = t.first_hops(s, d);
                assert!(!hops.is_empty());
                for &n in hops {
                    assert!(net.are_adjacent(s, n));
                    assert_eq!(t.dist(n, d), t.dist(s, d) - 1);
                }
            }
        }
    }

    #[test]
    fn sampled_paths_are_minimal_and_valid() {
        let net = oft(3);
        let t = MinimalTables::build(&net);
        let mut rng = SmallRng::seed_from_u64(7);
        for s in 0..net.num_routers() {
            for d in 0..net.num_routers() {
                if s == d {
                    continue;
                }
                let p = t.sample_min_path(s, d, &mut rng);
                assert_eq!(p.src(), s);
                assert_eq!(p.dst(), d);
                assert_eq!(p.num_hops(), t.dist(s, d) as usize);
                for (a, b) in p.links() {
                    assert!(net.are_adjacent(a, b));
                }
            }
        }
    }

    #[test]
    fn path_counts_match_common_neighbors() {
        let net = slim_fly(5, SlimFlyP::Floor);
        let t = MinimalTables::build(&net);
        for s in 0..net.num_routers() {
            for d in 0..net.num_routers() {
                if s == d {
                    continue;
                }
                assert_eq!(t.minimal_path_count(s, d), net.shortest_path_count(s, d));
            }
        }
    }

    #[test]
    fn fat_tree_first_hop_diversity_is_full() {
        // FT2 leaves see all r/2 spines as first hops — the high-diversity
        // reference the SSPTs trade away.
        let net = d2net_topo::fat_tree2(8);
        let t = MinimalTables::build(&net);
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a == b {
                    continue;
                }
                assert_eq!(t.first_hops(a, b).len(), 4);
                assert_eq!(t.minimal_path_count(a, b), 4);
            }
        }
    }

    #[test]
    fn hyperx_distances_and_paths() {
        let net = d2net_topo::hyperx2(3, 3, 1);
        let t = MinimalTables::build(&net);
        // Same row/column: distance 1; both differ: distance 2 with two
        // first hops (route through either dimension first).
        assert_eq!(t.dist(0, 1), 1);
        assert_eq!(t.dist(0, 4), 2);
        assert_eq!(t.first_hops(0, 4).len(), 2);
    }

    #[test]
    fn unique_path_detection() {
        let net = mlfm(3);
        let t = MinimalTables::build(&net);
        // LR 0 (layer 0, pos 0) and LR 5 (layer 1, pos 1): different
        // column → unique path. LR 0 and LR 4 (layer 1, pos 0): same
        // column → h = 3 paths.
        assert!(t.unique_min_path(0, 5).is_some());
        assert!(t.unique_min_path(0, 4).is_none());
        assert!(t.unique_min_path(0, 0).is_none());
    }
}
