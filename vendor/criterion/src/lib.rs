//! Offline stand-in for `criterion` (the subset d2net-bench uses).
//!
//! Implements a plain wall-clock harness: each benchmark runs a short
//! calibration pass, then `sample_size` timed samples, and prints
//! `median [min .. max]` per benchmark id. No statistics beyond that, no
//! HTML reports, no CLI filtering — but `cargo bench` produces honest,
//! comparable numbers fully offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one closure; handed to `bench_*` callbacks.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: one warm-up call, then `sample_size` timed
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up / lazy-init pass, untimed
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:50} median {:>12?}  [{:?} .. {:?}]",
            median,
            sorted[0],
            sorted[sorted.len() - 1]
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (upstream
    /// criterion's statistical sample count; here, plain repetitions).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream tuning knob; accepted and ignored (we time exactly
    /// `sample_size` iterations regardless).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        b.report(&id.id);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .bench_function(BenchmarkId::new("sum", 100), |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
        g.bench_with_input(BenchmarkId::new("sum", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
