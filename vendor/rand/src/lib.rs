//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the exact API surface it consumes: [`Rng::gen_range`]
//! over integer and float ranges, [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are **not** bit-compatible with upstream `rand`; nothing in d2net
//! depends on upstream byte streams, only on seeded reproducibility.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor d2net
    /// uses; full-entropy seeding is intentionally omitted).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` onto `[0, width)` via the widening-multiply trick
/// (bias < 2^-64 · width, immaterial for simulation workloads).
#[inline]
fn bounded(raw: u64, width: u64) -> u64 {
    ((raw as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + bounded(rng.next_u64(), width) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_float_ranges {
    ($($t:ty, $bits:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit =
                    (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_ranges!(f64, 53; f32, 24);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++), mirroring the
    /// role of `rand::rngs::SmallRng` under the `small_rng` feature.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors (and used by upstream rand for seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method d2net uses).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all outcomes reachable: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }
}
