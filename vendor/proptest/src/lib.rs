//! Offline stand-in for `proptest` (the subset d2net's property tests
//! use): the [`proptest!`] macro, integer-range and
//! [`prop::sample::select`] strategies, [`Strategy::prop_map`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Cases are generated deterministically (case index → SplitMix64
//! stream), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case reports its index and message and panics.

/// Deterministic per-case generator handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Unlike upstream proptest there is no value tree:
/// `generate` yields the case's value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[inline]
fn bounded(raw: u64, width: u64) -> u64 {
    ((raw as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), width) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng.next_u64(), width) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

pub mod prop {
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed list.
        pub struct Select<T> {
            items: Vec<T>,
        }

        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = crate::bounded(rng.next_u64(), self.items.len() as u64);
                self.items[idx as usize].clone()
            }
        }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; d2net's property tests all override
        // this, so the default only guards future call sites.
        ProptestConfig { cases: 32 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: skip this case.
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests. Each `fn name(arg in strategy)`
/// expands to a `#[test]` running `cases` generated inputs; the body may
/// use `prop_assert*`/`prop_assume!` and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // Distinct stream per case; offset decorrelates the
                    // streams from the strategies' own arithmetic.
                    let mut rng =
                        $crate::TestRng::new(case.wrapping_mul(0x9E37_79B9).wrapping_add(0xD2_4E7));
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    #[allow(unreachable_code)]
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed at case {}: {}", stringify!($name), case, msg)
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0u64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn select_and_map_compose(v in prop::sample::select(vec![1u32, 2, 3]).prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20 || v == 30, "got {}", v);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
