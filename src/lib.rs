pub use d2net_core::*;
