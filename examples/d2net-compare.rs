//! Cross-run manifest diff: load two ledgered run manifests (written by
//! `d2net-decisions` or any campaign that called
//! `RunManifest::set_decisions`) and report where their routing
//! decisions diverged and why.
//!
//! ```text
//! cargo run --release --example d2net-compare -- A.json B.json [--json]
//! ```
//!
//! Prints the per-load misroute-rate table, the first load point where
//! the two runs disagree, the per-source-router misroute deltas at that
//! point, and the sampled decision records behind the largest divergence
//! margins. When the pair is UGAL-L vs UGAL-G the divergence is
//! attributed to the local variant's first-hop-only cost visibility
//! (paper §3.3). `--json` emits a machine-readable summary instead.

use d2net::prelude::*;

fn main() {
    let mut paths = Vec::new();
    let mut as_json = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => as_json = true,
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}; usage: d2net-compare A.json B.json [--json]");
                std::process::exit(2);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: d2net-compare A.json B.json [--json]");
        std::process::exit(2);
    }
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("reading {p}: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (read(&paths[0]), read(&paths[1]));
    match compare_manifests(&a, &b) {
        Ok(report) => {
            if as_json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        Err(e) => {
            eprintln!("d2net-compare: {e}");
            std::process::exit(1);
        }
    }
}
