//! The Stacked Single-Path Tree class (paper §2.2.2) — the paper's own
//! topological contribution — explored through its generic constructor:
//! instantiate `2·r1/r2` Single-Path Trees and merge their upper levels.
//!
//! Shows, for each buildable `(r1, r2)` pair:
//!   - that the construction yields a valid SSPT (single-path property,
//!     endpoint diameter 2, the 3-ports/2-links cost law),
//!   - how scale and path diversity trade off across the class
//!     (`r2 = 2` → MLFM-like; `r2 = r1` → OFT-like, 2× the scale),
//!   - a short simulation confirming the 1/p worst-case collapse and its
//!     recovery under indirect routing.
//!
//! Run with: `cargo run --release --example sspt_class`

use d2net::prelude::*;
use d2net::topo::spt;

fn main() {
    println!("== the SSPT class: stacked Single-Path Trees ==\n");

    let combos: Vec<(u64, u64)> = vec![
        (4, 2),
        (6, 2),
        (8, 2), // MLFM family
        (4, 4),
        (6, 6),
        (8, 8), // OFT family
    ];

    println!(
        "{:>4} {:>4} | {:>6} | {:>7} | {:>7} | {:>10} | {:>9} | {:>11}",
        "r1", "r2", "copies", "routers", "nodes", "ports/node", "diameter", "multi-paths"
    );
    println!("{}", "-".repeat(78));
    for &(r1, r2) in &combos {
        let net = spt::stacked_sspt(r1, r2, r1 as u32);
        let report = spt::validate_sspt(&net); // panics if not a valid SSPT
        println!(
            "{:>4} {:>4} | {:>6} | {:>7} | {:>7} | {:>10.2} | {:>9} | {:>4} pairs x{}",
            r1,
            r2,
            2 * r1 / r2,
            net.num_routers(),
            net.num_nodes(),
            net.total_ports() as f64 / net.num_nodes() as f64,
            net.endpoint_diameter(),
            report.multi_path_pairs,
            report.multi_path_diversity.unwrap_or(1),
        );
    }

    println!(
        "\nSame r1 = 8, same per-endpoint cost — but r2 = r1 doubles the scale\n\
         ({} vs {} end-nodes), which is the paper's central OFT-vs-MLFM result.\n",
        spt::sspt_scale(8, 8),
        spt::sspt_scale(8, 2),
    );

    // Simulate the class-wide worst case and its indirect-routing rescue
    // on one instance of each family.
    println!("worst-case shift traffic at full load (60 us simulated):");
    println!(
        "{:20} | {:>9} | {:>9} | {:>9}",
        "instance", "analytic", "MIN", "INR"
    );
    println!("{}", "-".repeat(56));
    for &(r1, r2) in &[(6u64, 2u64), (6, 6)] {
        let net = spt::stacked_sspt(r1, r2, r1 as u32);
        let pattern = worst_case(&net);
        let cfg = SimConfig::default();
        let min = RoutePolicy::new(&net, Algorithm::Minimal);
        let inr = RoutePolicy::new(&net, Algorithm::Valiant);
        let s_min = run_synthetic(&net, &min, &pattern, 1.0, 60_000, 12_000, cfg);
        let s_inr = run_synthetic(&net, &inr, &pattern, 1.0, 60_000, 12_000, cfg);
        assert!(!s_min.deadlocked && !s_inr.deadlocked);
        println!(
            "{:20} | {:>9.3} | {:>9.3} | {:>9.3}",
            net.name(),
            worst_case_saturation(&net),
            s_min.throughput,
            s_inr.throughput,
        );
    }
}
