//! The complete figure/table regeneration harness: prints the rows/series
//! of every artifact in the paper's evaluation.
//!
//! Usage:
//!   cargo run --release --example paper_figures -- <artifact> [--small]
//!
//! Artifacts: table2, fig3, fig4, fig6a, fig6b, fig7a, fig7b, fig8a,
//! fig8b, fig9a, fig9b, fig10a, fig10b, fig11a, fig11b, fig12a, fig12b,
//! fig13, fig14, diversity, all
//!
//! Runs the paper's CORAL-Summit-scale configs (§4.1) by default —
//! intra-run sharding (`D2NET_SHARDS`, DESIGN.md §14) and `--par` keep
//! the runtimes tractable; see EXPERIMENTS.md. `--small` switches to
//! the reduced ~400-600-node configurations for laptop-speed turnaround
//! (`--full` is still accepted and names the default).
//! `--svg <dir>` additionally renders each simulated figure to SVG.
//! `--par` fans each figure's curves across the worker pool
//! (`D2NET_THREADS` pins the count); output is identical to the serial
//! drivers, with sweep notices printed once per figure.

use d2net::prelude::*;
use std::path::PathBuf;

fn svg_dir(args: &[String]) -> Option<PathBuf> {
    args.iter().position(|a| a == "--svg").map(|i| {
        let dir = PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(|| "results".into()));
        std::fs::create_dir_all(&dir).expect("create svg output dir");
        dir
    })
}

fn save_svg(dir: &Option<PathBuf>, name: &str, svg: String) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, svg).expect("write svg");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let artifact = args.get(1).cloned().unwrap_or_else(|| {
        eprintln!("usage: paper_figures <table2|fig3|fig4|fig6a|...|fig14|diversity|all> [--small]");
        std::process::exit(2);
    });
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Reduced
    } else {
        Scale::Full
    };
    let params = RunParams::for_scale(scale);
    let svg = svg_dir(&args);
    let par = args.iter().any(|a| a == "--par");
    let threads = resolve_threads(0);

    let run = |name: &str| artifact == name || artifact == "all";

    // `--par` routes through the fanned drivers; they return notices
    // instead of printing, so surface them here.
    let fig6_curves = |nets: &[Network], traffic: Traffic| -> Vec<Curve> {
        if par {
            let set = fig6_par(nets, traffic, &params, threads);
            for n in &set.notices {
                eprintln!("{}", n.render());
            }
            set.curves
        } else {
            fig6(nets, traffic, &params)
        }
    };
    let adaptive_curves =
        |net: &Network, variants: &[(String, usize, f64, Option<f64>)]| -> Vec<Curve> {
            if par {
                let set = adaptive_sweep_par(net, variants, &params, threads);
                for n in &set.notices {
                    eprintln!("{}", n.render());
                }
                set.curves
            } else {
                adaptive_sweep(net, variants, &params)
            }
        };

    if run("table2") {
        println!("== Table 2: 4-ML3B ==");
        print!("{}", render_table2(&table2()));
        println!();
    }
    if run("fig3") {
        println!("== Fig. 3: scale vs radix ==");
        print!("{}", render_fig3(&fig3(&[16, 24, 32, 48, 64])));
        println!();
    }
    if run("fig4") {
        println!("== Fig. 4: approximate bisection bandwidth ==");
        let restarts = if scale == Scale::Full { 8 } else { 4 };
        print!("{}", render_fig4(&fig4(restarts)));
        println!();
    }
    if run("fig6a") {
        println!("== Fig. 6a: oblivious routing, uniform traffic ({scale:?}) ==");
        let nets = eval_topologies(scale);
        let curves = fig6_curves(&nets, Traffic::Uniform);
        print!("{}", render_curves(&curves));
        save_svg(&svg, "fig6a_throughput", throughput_chart("Fig 6a: MIN/INR, uniform", &curves).render());
        save_svg(&svg, "fig6a_delay", delay_chart("Fig 6a: delay, uniform", &curves).render());
    }
    if run("fig6b") {
        println!("== Fig. 6b: oblivious routing, worst-case traffic ({scale:?}) ==");
        let nets = eval_topologies(scale);
        let curves = fig6_curves(&nets, Traffic::WorstCase);
        print!("{}", render_curves(&curves));
        save_svg(&svg, "fig6b_throughput", throughput_chart("Fig 6b: MIN/INR, worst case", &curves).render());
        save_svg(&svg, "fig6b_delay", delay_chart("Fig 6b: delay, worst case", &curves).render());
    }
    // Figs. 7-12: adaptive parameter sweeps. Topology index in the
    // eval set: SF(p=floor) for 7/8, MLFM for 9/11, OFT for 10/12.
    for (fig, idx) in [(7u8, 0usize), (8, 0), (9, 2), (10, 3), (11, 2), (12, 3)] {
        for panel in ['a', 'b'] {
            if !run(&format!("fig{fig}{panel}")) {
                continue;
            }
            let nets = eval_topologies(scale);
            let net = &nets[idx];
            let kind = match fig {
                7 => "SF-A",
                8 => "SF-ATh (T=10%)",
                9 => "MLFM-A",
                10 => "OFT-A",
                11 => "MLFM-ATh (T=10%)",
                _ => "OFT-ATh (T=10%)",
            };
            println!("== Fig. {fig}{panel}: {kind} on {} ({scale:?}) ==", net.name());
            let variants = adaptive_variants(fig, panel);
            let curves = adaptive_curves(net, &variants);
            print!("{}", render_curves(&curves));
            let base = format!("fig{fig}{panel}");
            save_svg(&svg, &format!("{base}_throughput"),
                throughput_chart(&format!("Fig {fig}{panel}: {kind}"), &curves).render());
            save_svg(&svg, &format!("{base}_delay"),
                delay_chart(&format!("Fig {fig}{panel}: {kind} delay"), &curves).render());
        }
    }
    if run("fig13") {
        println!("== Fig. 13: all-to-all effective throughput ({scale:?}) ==");
        let nets = eval_topologies(scale);
        let rows = fig13(&nets, 7_680, &params);
        print!("{}", render_exchange(&rows));
        save_svg(&svg, "fig13", exchange_chart("Fig 13: all-to-all", &rows).render());
        println!();
    }
    if run("fig14") {
        println!("== Fig. 14: nearest-neighbor effective throughput ({scale:?}) ==");
        let nets = eval_topologies(scale);
        let bytes = if scale == Scale::Full { 524_288 } else { 65_536 };
        let rows = fig14(&nets, bytes, &params);
        print!("{}", render_exchange(&rows));
        save_svg(&svg, "fig14", exchange_chart("Fig 14: nearest neighbor", &rows).render());
        println!();
    }
    if run("diversity") {
        println!("== §2.3.3: shortest-path diversity ==");
        for (what, mean, max) in diversity_report() {
            println!("{what}: mean {mean:.3}, max {max}");
        }
        println!();
    }
}
