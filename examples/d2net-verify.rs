//! `d2net-verify`: the static preflight verifier as a CLI (§3.4).
//!
//! Runs every static check — CDG acyclicity with counterexample
//! extraction, routing-table soundness, topology structural lints,
//! escape coverage and buffer sufficiency — over the paper-standard
//! evaluation configs, without simulating a single cycle.
//!
//! Usage:
//!   cargo run --release --example d2net-verify              # full demo
//!   cargo run --release --example d2net-verify -- --paper-gate
//!
//! `--paper-gate` verifies only the paper-figure configs and exits
//! non-zero if any ERROR diagnostic appears — the CI gate.

use d2net::prelude::*;
use d2net::routing::cdg;

fn paper_configs() -> Vec<(Network, Algorithm)> {
    let algos = [
        Algorithm::Minimal,
        Algorithm::Valiant,
        Algorithm::Ugal {
            n_i: 4,
            c: 2.0,
            threshold: None,
        },
    ];
    let mut out = Vec::new();
    for net in eval_topologies(Scale::Reduced) {
        for algo in algos {
            out.push((net.clone(), algo));
        }
    }
    out
}

/// The canonical unsafe configuration: a 5-router ring with minimal
/// routing squeezed onto a single VC (§3.4's negative control).
fn unsafe_ring_demo() -> u32 {
    use d2net::routing::{IntermediateSet, RoutePolicy, VcScheme};
    use d2net::topo::TopologyKind;

    let net = Network::from_parts(
        TopologyKind::Custom {
            label: "ring5".into(),
        },
        vec![vec![1, 4], vec![0, 2], vec![1, 3], vec![2, 4], vec![0, 3]],
        vec![1; 5],
    );
    let policy = RoutePolicy::with_overrides(
        &net,
        Algorithm::Minimal,
        VcScheme::SingleVc,
        IntermediateSet::EndpointRouters,
        false,
    );
    let report = verify(&net, &policy, &VerifyParams::default());
    println!("{}", report.render());
    u32::from(report.verdict() == Verdict::Rejected)
}

fn main() {
    let gate = std::env::args().any(|a| a == "--paper-gate");

    let mut errors = 0u32;
    for (net, algo) in paper_configs() {
        let policy = RoutePolicy::new(&net, algo);
        let report = verify(&net, &policy, &VerifyParams::default());
        println!("{}", report.render());
        errors += report.count(Severity::Error);
    }

    if gate {
        if errors > 0 {
            eprintln!("paper gate FAILED: {errors} error diagnostics across paper configs");
            std::process::exit(1);
        }
        println!("paper gate passed: every paper-standard config certified");
        return;
    }

    // Demo mode continues with the negative control: the verifier must
    // *reject* the single-VC ring and name the concrete dependency cycle.
    println!("--- negative control (expected REJECTED) ---");
    if unsafe_ring_demo() == 0 {
        eprintln!("BUG: the unsafe single-VC ring was not rejected");
        std::process::exit(1);
    }

    // And the same verdict is reachable through the engine's hook.
    let net = mlfm(4);
    let policy = RoutePolicy::new(&net, Algorithm::Minimal);
    let report = preflight(&net, &policy, &SimConfig::default());
    println!("--- engine preflight hook ---");
    println!("{}", report.summary());
    let cdg = cdg::build_cdg(&net, &policy);
    println!(
        "(CDG spans {} channels; cycle search found {})",
        cdg.num_channels(),
        match cdg.find_cycle() {
            None => "none".to_string(),
            Some(c) => format!("one of length {}", c.len()),
        }
    );
}
