//! Routing-decision forensics demo: run the same adversarial load sweep
//! under UGAL-L and UGAL-G with the decision ledger attached, prove the
//! serial/parallel determinism contract on the full manifests, and write
//! one ledgered run manifest per variant for `d2net-compare`.
//!
//! ```text
//! cargo run --release --example d2net-decisions \
//!     [-- --rate N] [--manifest-l FILE] [--manifest-g FILE] [--trace FILE]
//! ```
//!
//! The ledger records, for every non-trivial injection-time decision,
//! the occupancies the cost function consulted, every candidate it
//! costed, and the verdict — aggregated exactly (per-router misroute
//! tables, divergence-margin histograms, port heatmaps) with full
//! records retained for a deterministic 1-in-N flight sample. The two
//! manifests feed `d2net-compare`, which attributes UGAL-L-vs-UGAL-G
//! divergence to first-hop-only cost visibility (paper §3.3).
//!
//! `--trace FILE` additionally exports the UGAL-L ledger onto a
//! Perfetto-loadable decisions track (`ph:"i"` instants plus misroute
//! and occupancy counter tracks).

use d2net::prelude::*;

fn main() {
    let args = parse_args();
    let ledger_cfg = LedgerConfig {
        sample_rate: args.rate,
        ..LedgerConfig::default()
    };

    let net = slim_fly(5, SlimFlyP::Floor);
    let pattern = worst_case(&net);
    let params = RunParams {
        duration_ns: 30_000,
        warmup_ns: 6_000,
        loads: vec![0.2, 0.5, 0.8],
        sim: SimConfig::default(),
    };
    let variants = [
        (
            "UGAL-L",
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
            &args.manifest_l,
        ),
        ("UGAL-G", Algorithm::UgalG { n_i: 4, c: 2.0 }, &args.manifest_g),
    ];

    println!(
        "== decision-ledgered sweeps: {} under WC, loads {:?} ==\n",
        net.name(),
        params.loads
    );
    let mut first_ledgers = None;
    for (name, algo, path) in variants {
        let policy = RoutePolicy::new(&net, algo);
        let report = verify(&net, &policy, &params.sim.verify_params());
        assert_ne!(report.verdict(), Verdict::Rejected, "{}", report.render());
        let label = format!("{} {name} WC", net.name());

        let build_manifest = |run: &LedgeredCurve| {
            let mut m = RunManifest::new(
                label.clone(),
                &net,
                name,
                "worst-case",
                params.duration_ns,
                params.warmup_ns,
                params.sim,
            );
            m.set_preflight(report.summary());
            m.set_algorithm(algo);
            m.push_notices(&run.notices);
            m.set_decisions(DecisionsManifest::from_points(ledger_cfg, &run.ledgers));
            m.push_curve(run.curve.clone());
            m.to_json()
        };

        let serial = ledgered_curve(&net, &policy, &pattern, &label, &params, ledger_cfg, 1);
        let parallel = ledgered_curve(&net, &policy, &pattern, &label, &params, ledger_cfg, 0);

        // The determinism contract, asserted on every run: ledgers are
        // pure functions of (config, point index), and the manifest
        // serializer is deterministic, so the whole documents match.
        let ser_json = build_manifest(&serial);
        let par_json = build_manifest(&parallel);
        assert_eq!(
            ser_json, par_json,
            "serial and parallel sweeps must produce byte-identical ledgered manifests"
        );

        println!("{name}:");
        println!("  load  | decisions | misroutes | rate    | sampled");
        for p in &serial.ledgers {
            let l = &p.ledger;
            println!(
                "  {:5.3} | {:9} | {:9} | {:7.4} | {}{}",
                p.load,
                l.decisions,
                l.indirect,
                l.misroute_rate(),
                l.samples.len(),
                if l.samples_truncated { " (truncated)" } else { "" }
            );
        }
        write_atomic(path, &ser_json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote {path} ({} bytes)\n", ser_json.len());
        if first_ledgers.is_none() {
            first_ledgers = Some((label, serial.ledgers));
        }
    }

    if let Some(trace_path) = &args.trace {
        let (label, ledgers) = first_ledgers.as_ref().expect("variants ran");
        let json = chrome_trace_json_ledgered(label, &[], &[], ledgers);
        write_atomic(trace_path, &json).unwrap_or_else(|e| panic!("writing {trace_path}: {e}"));
        println!(
            "wrote {trace_path} ({} bytes) — decision instants and counter tracks \
             load in https://ui.perfetto.dev",
            json.len()
        );
    }
    println!("next: cargo run --release --example d2net-compare -- {} {}",
        args.manifest_l, args.manifest_g);
}

struct Args {
    rate: u32,
    manifest_l: String,
    manifest_g: String,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        rate: 4,
        manifest_l: "MANIFEST_ugal_l.json".to_string(),
        manifest_g: "MANIFEST_ugal_g.json".to_string(),
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--rate" => {
                out.rate = value("--rate").parse().unwrap_or_else(|e| {
                    eprintln!("--rate: {e}");
                    std::process::exit(2);
                })
            }
            "--manifest-l" => out.manifest_l = value("--manifest-l"),
            "--manifest-g" => out.manifest_g = value("--manifest-g"),
            "--trace" => out.trace = Some(value("--trace")),
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
    }
    out
}
