//! Exports any of the evaluated topologies as a Graphviz DOT file and a
//! round-trippable edge list.
//!
//! Usage: `cargo run --release --example export_topology [sf|mlfm|oft|hyperx] [out_dir]`

use d2net::prelude::*;
use d2net::topo::{to_dot, to_edge_list};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "oft".into());
    let out_dir = std::env::args().nth(2).unwrap_or_else(|| "results".into());
    let net = match which.as_str() {
        "sf" => slim_fly(5, SlimFlyP::Floor),
        "mlfm" => mlfm(4),
        "oft" => oft(4),
        "hyperx" => hyperx2_balanced(9),
        other => {
            eprintln!("unknown topology {other}");
            std::process::exit(1);
        }
    };
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let dot = format!("{out_dir}/{which}.dot");
    let edges = format!("{out_dir}/{which}.edges");
    std::fs::write(&dot, to_dot(&net)).expect("write dot");
    std::fs::write(&edges, to_edge_list(&net)).expect("write edges");
    println!(
        "{}: {} routers / {} nodes -> {dot}, {edges}",
        net.name(),
        net.num_routers(),
        net.num_nodes()
    );
    println!("render with: neato -Tsvg {dot} -o {out_dir}/{which}.svg");
}
