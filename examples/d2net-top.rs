//! Live progress viewer for the d2net sweep service (DESIGN.md §16).
//!
//! ```text
//! cargo run --release --example d2net-top -- --status HOST:PORT \
//!     [--once] [--raw] [--interval-ms N]
//! cargo run --release --example d2net-top -- --events FILE [--once]
//! ```
//!
//! `--status` polls a `d2net-serve --status-addr` endpoint: `/healthz`,
//! `/readyz` and `/metrics` are combined into a one-screen dashboard
//! with a live points/sec rate and an ETA over the scheduled points.
//! `--events` tails a `d2net.events/v1` JSONL log instead, rendering
//! each event as one line. `--once` prints a single snapshot and exits
//! (non-zero when the endpoint is unreachable, unhealthy, or serves a
//! payload that fails the exposition grammar — the CI probe). `--raw`
//! dumps the verbatim `/metrics` body, for grepping.

use d2net::prelude::*;
use std::time::{Duration, Instant};

struct Opts {
    status: Option<String>,
    events: Option<std::path::PathBuf>,
    once: bool,
    raw: bool,
    interval_ms: u64,
}

fn usage(err: &str) -> ! {
    eprintln!("d2net-top: {err}");
    eprintln!("usage: d2net-top --status HOST:PORT [--once] [--raw] [--interval-ms N]");
    eprintln!("       d2net-top --events FILE [--once]");
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        status: None,
        events: None,
        once: false,
        raw: false,
        interval_ms: 1_000,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--status" => {
                opts.status = Some(args.next().unwrap_or_else(|| usage("--status wants HOST:PORT")))
            }
            "--events" => {
                opts.events = Some(
                    args.next()
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--events wants a file path")),
                )
            }
            "--once" => opts.once = true,
            "--raw" => opts.raw = true,
            "--interval-ms" => {
                opts.interval_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage("--interval-ms wants a positive integer"))
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if opts.status.is_some() == opts.events.is_some() {
        usage("pass exactly one of --status or --events");
    }
    opts
}

/// Plucks one sample value out of an exposition payload; `name` may
/// include a label set (the exposition renders labels verbatim).
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

fn dashboard(addr: &str, body: &str, healthy: bool, ready: bool, rate: Option<f64>) -> String {
    let g = |name: &str| metric(body, name).unwrap_or(0.0);
    let run = g("d2net_points_run_total");
    let total = g("d2net_points_scheduled_total");
    let remaining = (total - run).max(0.0);
    let eta = match rate {
        Some(r) if r > 1e-9 && remaining > 0.0 => format!("{:.0}s", remaining / r),
        _ if remaining == 0.0 => "done".to_string(),
        _ => "—".to_string(),
    };
    format!(
        "d2net-top — {addr} ({}, {})\n\
         requests: {:.0} spooled | {:.0} in flight | {:.0} completed / {:.0} rejected / \
         {:.0} interrupted | {:.0} journal resume(s)\n\
         sweeps:   {:.0} started / {:.0} finished\n\
         points:   {run:.0}/{total:.0} run | completed {:.0} | retried {:.0} | \
         panicked {:.0} | exhausted {:.0} | stubbed {:.0}\n\
         engine:   {:.0} events | {} points/sec | ETA {eta}\n",
        if healthy { "healthy" } else { "UNHEALTHY" },
        if ready { "ready" } else { "draining" },
        g("d2net_spool_depth"),
        g("d2net_inflight_requests"),
        metric(body, "d2net_requests_total{outcome=\"completed\"}").unwrap_or(0.0),
        metric(body, "d2net_requests_total{outcome=\"rejected\"}").unwrap_or(0.0),
        metric(body, "d2net_requests_total{outcome=\"interrupted\"}").unwrap_or(0.0),
        g("d2net_journal_resumes_total"),
        g("d2net_sweeps_started_total"),
        g("d2net_sweeps_finished_total"),
        g("d2net_points_completed_total"),
        g("d2net_points_retried_total"),
        g("d2net_points_panicked_total"),
        g("d2net_points_exhausted_total"),
        g("d2net_points_stubbed_total"),
        g("d2net_events_processed_total"),
        rate.map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| format!("{:.1} (lifetime)", g("d2net_points_per_sec"))),
    )
}

fn watch_status(opts: &Opts) -> ! {
    let addr = opts.status.as_deref().expect("mode checked in parse_opts");
    let mut prev: Option<(Instant, f64)> = None;
    loop {
        let healthy = matches!(http_get(addr, "/healthz"), Ok((200, _)));
        let ready = matches!(http_get(addr, "/readyz"), Ok((200, _)));
        let (code, body) = match http_get(addr, "/metrics") {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("d2net-top: {addr} unreachable: {e}");
                std::process::exit(1);
            }
        };
        if code != 200 {
            eprintln!("d2net-top: /metrics answered {code}");
            std::process::exit(1);
        }
        if let Err(e) = validate_prometheus(&body) {
            eprintln!("d2net-top: /metrics violates the exposition grammar: {e}");
            std::process::exit(1);
        }
        if opts.raw {
            print!("{body}");
        } else {
            let run = metric(&body, "d2net_points_run_total").unwrap_or(0.0);
            let now = Instant::now();
            let rate = prev.map(|(t0, run0)| {
                (run - run0).max(0.0) / now.duration_since(t0).as_secs_f64().max(1e-9)
            });
            prev = Some((now, run));
            print!("{}", dashboard(addr, &body, healthy, ready, rate));
        }
        if opts.once {
            std::process::exit(if healthy { 0 } else { 1 });
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
}

fn render_event(ev: &ParsedEvent) -> String {
    format!(
        "{:>8} {:5} {:<18} {}",
        ev.seq,
        ev.level.as_str().to_uppercase(),
        ev.code,
        ev.message
    )
}

fn watch_events(opts: &Opts) -> ! {
    let path = opts.events.as_deref().expect("mode checked in parse_opts");
    let mut offset = 0usize;
    let mut parsed_any = false;
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("d2net-top: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        // Byte offset of the last full line already printed; a torn
        // tail (mid-append) is left for the next poll.
        let fresh = &text[offset.min(text.len())..];
        let consumed = fresh.rfind('\n').map(|i| i + 1).unwrap_or(0);
        for line in fresh[..consumed].lines() {
            match parse_event_line(line) {
                Ok(Some(ev)) => {
                    parsed_any = true;
                    println!("{}", render_event(&ev));
                }
                Ok(None) => parsed_any = true, // schema header
                Err(e) => {
                    eprintln!("d2net-top: bad event line: {e}");
                    std::process::exit(1);
                }
            }
        }
        offset += consumed;
        if opts.once {
            std::process::exit(if parsed_any { 0 } else { 1 });
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
}

fn main() {
    let opts = parse_opts();
    if opts.status.is_some() {
        watch_status(&opts);
    } else {
        watch_events(&opts);
    }
}
