//! Structured-tracing demo: span profiler, packet flight recorder and
//! Perfetto-loadable trace export.
//!
//! ```text
//! cargo run --release --example d2net-trace \
//!     [-- --rate N] [--out FILE] [--manifest FILE] [--phase-only]
//! ```
//!
//! Runs a traced load sweep on a Slim Fly under Valiant routing, twice —
//! serial and fanned across the worker pool — and asserts the two trace
//! files are byte-identical before writing one of them. The exported
//! `trace_event` JSON (default `TRACE_run.json`) loads directly in
//! Perfetto / `chrome://tracing`: process 0 carries the harness
//! wall-clock spans (topo build, route tables, preflight, the sweeps),
//! process `i + 1` carries sweep point `i`'s warmup/measure/drain phase
//! track plus one thread per sampled packet flight with its hop timeline
//! and an injection→ejection flow arrow.
//!
//! `--rate N` samples one packet flight in N (hash-based, deterministic;
//! default 32). `--phase-only` suppresses flight recording, keeping only
//! phase spans and hot-loop counters. `--manifest FILE` additionally
//! writes a run manifest whose `"trace"` section snapshots the metrics
//! registry — the target of ci.sh's `--trace-smoke` gate.

use d2net::prelude::*;

fn main() {
    let args = parse_args();
    let trace_cfg = TraceConfig {
        sample_rate: args.rate,
        phase_only: args.phase_only,
        ..TraceConfig::default()
    };

    let mut prof = SpanProfiler::new();
    prof.enter("traced campaign");
    let net = prof.scope("topo build", || slim_fly(5, SlimFlyP::Floor));
    let policy = prof.scope("route tables", || {
        RoutePolicy::new(&net, Algorithm::Valiant)
    });
    let params = RunParams {
        duration_ns: 30_000,
        warmup_ns: 6_000,
        loads: vec![0.2, 0.5, 0.8],
        sim: SimConfig::default(),
    };
    let report = prof.scope("preflight", || {
        verify(&net, &policy, &params.sim.verify_params())
    });
    assert_ne!(report.verdict(), Verdict::Rejected, "{}", report.render());

    let label = format!("{} INR uniform", net.name());
    let serial = prof.scope("serial sweep", || {
        traced_curve(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &label,
            &params,
            trace_cfg,
            1,
        )
    });
    let parallel = prof.scope("parallel sweep", || {
        traced_curve(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &label,
            &params,
            trace_cfg,
            0,
        )
    });
    prof.exit();

    // The determinism contract, asserted on every run: per-point traces
    // are pure functions of (config, index), so the deterministic
    // by-index merge makes the parallel export byte-identical.
    let ser_json = chrome_trace_json(&label, &[], &serial.traces);
    let par_json = chrome_trace_json(&label, &[], &parallel.traces);
    assert_eq!(
        ser_json, par_json,
        "serial and parallel sweeps must export byte-identical traces"
    );
    if !args.phase_only {
        assert!(
            serial
                .traces
                .iter()
                .any(|p| p.trace.flights.iter().any(|f| !f.events.is_empty())),
            "sampling rate {} recorded no packet flight",
            args.rate
        );
    }

    print!("{}", prof.render());
    println!();
    let metrics = sweep_metrics(&serial.traces);
    println!("metrics registry ({} metrics):", metrics.metrics.len());
    for m in &metrics.metrics {
        let labels: Vec<String> = m
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let value = match &m.value {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("{v:.1}"),
            MetricValue::Histogram { counts, .. } => format!("{counts:?}"),
        };
        println!("  {:<24} {:<18} {}", m.name, labels.join(","), value);
    }
    let flights: usize = serial.traces.iter().map(|p| p.trace.flights.len()).sum();
    println!(
        "\n{} points traced, {} sampled flights (rate 1-in-{})",
        serial.traces.len(),
        flights,
        args.rate
    );

    // The written file includes the wall-clock harness spans on pid 0;
    // those are nondeterministic by nature, which is why the byte
    // comparison above ran on the engine-only export.
    let full = chrome_trace_json(&label, prof.spans(), &serial.traces);
    write_atomic(&args.out, &full).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {} ({} bytes) — load it in https://ui.perfetto.dev", args.out, full.len());

    if let Some(path) = &args.manifest {
        let mut m = RunManifest::new(
            format!("traced sweep: {label}"),
            &net,
            "INR",
            "uniform",
            params.duration_ns,
            params.warmup_ns,
            params.sim,
        );
        m.set_preflight(report.summary());
        m.push_notices(&serial.notices);
        m.set_trace(TraceManifest::from_points(trace_cfg, &serial.traces));
        m.push_curve(serial.curve.clone());
        let json = m.to_json();
        write_atomic(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

struct Args {
    rate: u32,
    out: String,
    manifest: Option<String>,
    phase_only: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        rate: 32,
        out: "TRACE_run.json".to_string(),
        manifest: None,
        phase_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--rate" => {
                out.rate = value("--rate").parse().unwrap_or_else(|e| {
                    eprintln!("--rate: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out.out = value("--out"),
            "--manifest" => out.manifest = Some(value("--manifest")),
            "--phase-only" => out.phase_only = true,
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
    }
    out
}
