//! Routing explorer: inspect minimal paths, path diversity, Valiant
//! route shapes, and *prove* deadlock freedom of the paper's VC schemes
//! on concrete instances via channel-dependency-graph analysis (§3.4).
//!
//! Usage: `cargo run --release --example routing_explorer [sf|mlfm|oft]`

use d2net::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mlfm".into());
    let net = match which.as_str() {
        "sf" => slim_fly(5, SlimFlyP::Floor),
        "oft" => oft(4),
        "mlfm" => mlfm(4),
        other => {
            eprintln!("unknown topology {other}; use sf|mlfm|oft");
            std::process::exit(1);
        }
    };
    println!("== routing explorer: {} ==\n", net.name());
    println!(
        "{} routers, {} end-nodes, endpoint diameter {}",
        net.num_routers(),
        net.num_nodes(),
        net.endpoint_diameter()
    );

    // Path diversity census (§2.3.3).
    let d = endpoint_diversity(&net);
    println!(
        "\npath diversity over {} endpoint-router pairs: mean {:.3}, max {}, {:.2}% multi-path",
        d.pairs,
        d.mean,
        d.max,
        100.0 * d.multi_fraction
    );

    // Sample routes under each algorithm.
    let mut rng = SmallRng::seed_from_u64(42);
    let eps = net.endpoint_routers();
    let (s, dst) = (eps[0], eps[eps.len() / 2]);
    println!("\nsample routes from router {s} to router {dst}:");
    for (name, algo) in [
        ("MIN", Algorithm::Minimal),
        ("INR", Algorithm::Valiant),
        (
            "UGAL",
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: Some(0.1),
            },
        ),
    ] {
        let policy = RoutePolicy::new(&net, algo);
        let choice = policy.choose(s, dst, &d2net::routing::ZeroOccupancy, &mut rng);
        let vcs: Vec<u8> = (0..choice.path.num_hops())
            .map(|h| policy.vc_for_hop(&choice, h))
            .collect();
        println!(
            "  {name:5} {:?}  vcs={vcs:?}  ({})",
            choice.path.routers(),
            if choice.indirect { "indirect" } else { "minimal" }
        );
    }

    // Decision forensics (§3.3): replay sampled pairs through the
    // recorded chooser against a synthetic hot spot on the second hop of
    // the minimal path, and print what each adaptive variant saw at the
    // moment it decided. UGAL-L's first-hop-only cost function is blind
    // to this congestion; UGAL-G's whole-path sums are not.
    struct Congested {
        hot: (u32, u32),
        bytes: u64,
    }
    impl d2net::routing::OccupancyView for Congested {
        fn occupancy_bytes(&self, router: u32, next: u32) -> u64 {
            if (router, next) == self.hot {
                self.bytes
            } else {
                0
            }
        }
        fn capacity_bytes(&self) -> u64 {
            100_000
        }
    }

    let pairs: Vec<(u32, u32)> = (0..3)
        .map(|k| (eps[k], eps[(eps.len() / 2 + k) % eps.len()]))
        .filter(|&(a, b)| a != b)
        .collect();
    println!("\ndecision forensics (hot second hop at 90% buffer capacity):");
    for (detail, &(s, d)) in pairs.iter().enumerate().map(|(i, p)| (i == 0, p)) {
        let common = net.common_neighbors(s, d);
        let Some(&gr) = common.first() else {
            println!("  {s} -> {d}: adjacent routers, no two-hop minimal path; skipped");
            continue;
        };
        let occ = Congested {
            hot: (gr, d),
            bytes: 90_000,
        };
        println!("  {s} -> {d} via {gr}, link {gr}->{d} holds 90000 bytes:");
        println!(
            "    {:9} | {:14} | {:>6} | {:>9} | {:>11} | {:>9} | cands",
            "algo", "verdict", "q_m", "c_m", "chosen cost", "margin"
        );
        for (name, algo) in [
            ("UGAL-L", Algorithm::Ugal { n_i: 4, c: 2.0, threshold: None }),
            ("UGAL-ATh", Algorithm::Ugal { n_i: 4, c: 2.0, threshold: Some(0.1) }),
            ("UGAL-G", Algorithm::UgalG { n_i: 4, c: 2.0 }),
        ] {
            let policy = RoutePolicy::new(&net, algo);
            let (_, rec) = policy
                .try_choose_recorded(s, d, &occ, &mut rng)
                .expect("pair is connected");
            println!(
                "    {:9} | {:14} | {:>6} | {:>9.1} | {:>11.1} | {:>9.1} | {}",
                name,
                rec.verdict.name(),
                rec.q_m,
                rec.c_m,
                rec.chosen_cost,
                rec.margin,
                rec.candidates.len()
            );
            if detail {
                for c in &rec.candidates {
                    println!(
                        "      candidate via {:>3} (first hop {:>3}): occ {:>6} bytes, \
                         cost {:>9.1}",
                        c.intermediate, c.first_hop, c.occupancy_bytes, c.cost
                    );
                }
            }
        }
    }

    // Deadlock-freedom proofs (§3.4): CDG acyclicity under the paper's VC
    // budget, and the cycle that appears if the budget is cut to one VC.
    println!("\ndeadlock analysis (channel dependency graphs):");
    for (name, algo) in [("MIN", Algorithm::Minimal), ("INR", Algorithm::Valiant)] {
        let policy = RoutePolicy::new(&net, algo);
        let cdg = build_cdg(&net, &policy);
        println!(
            "  {name}: {} VCs -> CDG over {} channels is {}",
            policy.num_vcs(),
            cdg.num_channels(),
            if cdg.is_acyclic() {
                "ACYCLIC (deadlock-free)"
            } else {
                "CYCLIC (deadlock possible!)"
            }
        );
    }
    // Negative control: all hops on one VC.
    let policy = RoutePolicy::new(&net, Algorithm::Valiant);
    let mut broken = d2net::routing::ChannelGraph::new(&net, 1);
    for (path, _) in d2net::routing::cdg::all_policy_routes(&net, &policy) {
        broken
            .add_route(&path, &vec![0u8; path.num_hops()])
            .expect("policy routes stay on the network");
    }
    match broken.find_cycle() {
        None => println!("  INR forced onto a single VC -> CDG is acyclic"),
        Some(cycle) => {
            println!(
                "  INR forced onto a single VC -> CYCLIC; shortest dependency \
                 cycle has {} channels:",
                cycle.len()
            );
            for &c in &cycle {
                let (u, v, vc) = broken.decode(c);
                println!("    link {u:>3} -> {v:>3} vc {vc}");
            }
            println!("  (this is the deadlock the second VC prevents)");
        }
    }
}
