//! Observability demo: run a probed simulation and inspect what the
//! telemetry subsystem records.
//!
//! ```text
//! cargo run --release --example telemetry_probe
//! ```
//!
//! Three acts:
//! 1. a healthy Slim Fly under uniform load — link-utilization histogram,
//!    injection/ejection settling, convergence point;
//! 2. a deliberately broken configuration (minimal routing on a ring with
//!    a single VC) — deadlock forensics: the wait-for cycle, rendered;
//! 3. a probed load sweep folded into the self-describing JSON run
//!    manifest.

use d2net::prelude::*;

fn main() {
    healthy_run();
    forced_deadlock();
    manifest();
}

fn healthy_run() {
    println!("== 1. Probed Slim Fly (q=5), uniform traffic at 0.7 load ==\n");
    let net = slim_fly(5, SlimFlyP::Floor);
    let policy = RoutePolicy::new(&net, Algorithm::Minimal);
    let (stats, report) = run_synthetic_probed(
        &net,
        &policy,
        &SyntheticPattern::Uniform,
        0.7,
        100_000,
        20_000,
        SimConfig::default(),
        ProbeConfig::default(),
    );
    println!(
        "throughput {:.3}, avg delay {:.0} ns, {} samples at {} ns",
        stats.throughput,
        stats.avg_delay_ns,
        report.num_samples,
        report.config.sample_interval_ns
    );
    match report.converged_at_ns {
        Some(t) => println!("ejection rate converged at t = {t} ns"),
        None => println!("ejection rate never converged"),
    }

    // Histogram of per-link mean utilization across network ports.
    println!("\nper-link mean utilization histogram (router-to-router links):");
    let mut means = Vec::new();
    for port in 0..report.num_ports {
        if report.port_is_node[port as usize] {
            continue;
        }
        let sum: f32 = (0..report.num_samples)
            .map(|s| report.link_utilization(s, port))
            .sum();
        means.push(sum / report.num_samples as f32);
    }
    let buckets = 10;
    let mut counts = vec![0usize; buckets];
    for &m in &means {
        let b = ((m * buckets as f32) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in counts.iter().enumerate() {
        let lo = b as f32 / buckets as f32;
        let hi = (b + 1) as f32 / buckets as f32;
        let bar = "#".repeat(c * 50 / peak);
        println!("  [{lo:.1}, {hi:.1}) {c:4} |{bar}");
    }
    let s = report.summary();
    println!(
        "\nmean link utilization {:.3}, peak window {:.3}, peak VC occupancy {:.3}\n",
        s.mean_link_utilization, s.peak_link_utilization, s.peak_occupancy
    );
}

fn forced_deadlock() {
    println!("== 2. Forced deadlock: minimal routing on a 5-ring, one VC ==\n");
    let net = Network::from_parts(
        TopologyKind::Custom {
            label: "ring5".into(),
        },
        vec![vec![1, 4], vec![0, 2], vec![1, 3], vec![2, 4], vec![0, 3]],
        vec![1; 5],
    );
    let policy = RoutePolicy::with_overrides(
        &net,
        Algorithm::Minimal,
        VcScheme::SingleVc,
        IntermediateSet::EndpointRouters,
        false,
    );
    let cfg = SimConfig {
        buffer_bytes: 256, // one packet per buffer: pressure builds instantly
        ..Default::default()
    };
    // Everybody sends two hops clockwise: the minimal routes chase each
    // other around the ring and the single virtual network cannot break
    // the cycle.
    let pattern = SyntheticPattern::Permutation(vec![2, 3, 4, 0, 1]);
    let (stats, report) = run_synthetic_probed(
        &net,
        &policy,
        &pattern,
        1.0,
        50_000,
        0,
        cfg,
        ProbeConfig::default(),
    );
    println!(
        "deadlocked = {}, delivered {} packets before wedging\n",
        stats.deadlocked, stats.delivered_packets
    );
    match &report.deadlock {
        Some(forensics) => print!("{}", forensics.render()),
        None => println!("(no deadlock cycle found)"),
    }
    println!();
}

fn manifest() {
    println!("== 3. Run manifest (JSON) of a probed load sweep ==\n");
    let net = mlfm(4);
    let policy = RoutePolicy::new(&net, Algorithm::Minimal);
    let cfg = SimConfig::default();
    let points = load_sweep_probed(
        &net,
        &policy,
        &SyntheticPattern::Uniform,
        &[0.3, 0.6, 0.9],
        30_000,
        6_000,
        cfg,
        ProbeConfig::default(),
    );
    let mut m = RunManifest::new(
        "telemetry_probe demo sweep",
        &net,
        "MIN",
        "uniform",
        30_000,
        6_000,
        cfg,
    );
    m.push_curve(Curve {
        label: format!("{} MIN UNI", net.name()),
        points,
    });
    println!("{}", m.to_json());
}
