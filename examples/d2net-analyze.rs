//! Analytic-oracle demo: static channel-load and saturation
//! certification over the real route tables, cross-checked against the
//! simulator.
//!
//! ```text
//! cargo run --release --example d2net-analyze \
//!     [-- --tolerance T] [--prefix PATH] [--full]
//! ```
//!
//! Four acts:
//!
//! 1. **Exactness gate** — the §4.2 closed-form worst-case saturations
//!    (1/2p for Slim Fly, 1/h for MLFM, 1/k for OFT) reproduced by
//!    routing the adversarial permutations through the actual
//!    `MinimalTables`; any deviation beyond float noise fails the run.
//! 2. **Static prediction tables** — per family × traffic matrix ×
//!    routing policy: per-link load extremes, the saturation envelope,
//!    zero-load latency and cost per unit of delivered bandwidth, all
//!    without simulating a single packet.
//! 3. **Divergence gate** — a real uniform-traffic sweep per family
//!    under UGAL-L, compared against the predicted envelope, plus
//!    per-link residuals between a telemetry probe and the static
//!    loads. Serial and parallel sweeps must produce byte-identical
//!    `"analysis"`-bearing manifests (written to `--prefix<family>.json`).
//! 4. **Degraded bounds** — the same analysis over repaired route
//!    tables on a faulted network: saturation decays, unreachable
//!    demand is quantified.
//!
//! Exits nonzero when the exactness gate or any divergence gate fails.

use d2net::prelude::*;

fn families() -> Vec<(&'static str, Network)> {
    vec![
        ("SF(5)", slim_fly(5, SlimFlyP::Floor)),
        ("MLFM(4)", mlfm(4)),
        ("OFT(4)", oft(4)),
    ]
}

fn main() {
    let args = parse_args();
    let lat = LatencyModel::paper_default();
    let mut failures = 0u32;

    // ---- act 1: §4.2 closed forms from real tables -----------------
    println!("== worst-case saturations: closed form (paper ¤4.2) vs real route tables ==");
    println!("family   | closed form | from tables | max link load | verdict");
    println!("---------+-------------+-------------+---------------+--------");
    for (name, net) in families() {
        let closed = worst_case_saturation(&net);
        let Some(SyntheticPattern::Permutation(perm)) = worst_case_exact(&net) else {
            println!("{name:8} | {closed:11.4} |  (no exact adversarial permutation)");
            continue;
        };
        let tm = TrafficMatrix::permutation(&net, &perm)
            .expect("worst-case permutation is well-formed")
            .with_label("worst-case");
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let rep = analyze_minimal(&net, policy.tables(), &tm, &lat)
            .expect("pristine network analyzes");
        let exact = (rep.predicted_saturation - closed).abs() < 1e-9;
        if !exact {
            failures += 1;
        }
        println!(
            "{name:8} | {closed:11.4} | {:11.4} | {:13.2} | {}",
            rep.predicted_saturation,
            rep.max_link_load,
            if exact { "exact" } else { "MISMATCH" }
        );
    }
    // SF(q=7) is the δ = −1, girth-4 member: the unique-middle pattern
    // behind the saturating construction need not exist, so its row is
    // informational only.
    {
        let net = slim_fly(7, SlimFlyP::Floor);
        let closed = worst_case_saturation(&net);
        match worst_case_exact(&net) {
            Some(SyntheticPattern::Permutation(perm)) => {
                let tm = TrafficMatrix::permutation(&net, &perm)
                    .expect("worst-case permutation is well-formed")
                    .with_label("worst-case");
                let policy = RoutePolicy::new(&net, Algorithm::Minimal);
                let rep = analyze_minimal(&net, policy.tables(), &tm, &lat)
                    .expect("pristine network analyzes");
                println!(
                    "SF(7)    | {closed:11.4} | {:11.4} | {:13.2} | (informational)",
                    rep.predicted_saturation, rep.max_link_load
                );
            }
            _ => println!("SF(7)    | {closed:11.4} |  (no saturating permutation exists — girth 4)"),
        }
    }
    println!();

    // ---- act 2: static prediction tables ---------------------------
    let mut algos: Vec<(&str, Algorithm)> = vec![
        ("MIN", Algorithm::Minimal),
        (
            "UGAL-L",
            Algorithm::Ugal {
                n_i: 4,
                c: 2.0,
                threshold: None,
            },
        ),
    ];
    if args.full {
        algos.push(("INR", Algorithm::Valiant));
        algos.push(("UGAL-G", Algorithm::UgalG { n_i: 4, c: 2.0 }));
    }
    for (name, net) in families() {
        println!(
            "== {name}: static predictions ({} routers, {} nodes, {:.2} ports/node) ==",
            net.num_routers(),
            net.num_nodes(),
            net.total_ports() as f64 / net.num_nodes() as f64,
        );
        println!("traffic          | policy | envelope     | max load | saturation | mean thr | hops  | lat (ns) | cost/thr");
        println!("-----------------+--------+--------------+----------+------------+----------+-------+----------+---------");
        for tm in matrices(&net) {
            for (algo_name, algo) in &algos {
                let policy = RoutePolicy::new(&net, *algo);
                let pa = match analyze_policy(&net, &policy, &tm, &lat) {
                    Ok(pa) => pa,
                    Err(e) => {
                        println!("{:16} | {algo_name:6} | analysis failed: {e}", tm.label());
                        continue;
                    }
                };
                for rep in &pa.reports {
                    println!(
                        "{:16} | {algo_name:6} | {:12} | {:8.3} | {:10.3} | {:8.3} | {:5.2} | {:8.1} | {:8.2}",
                        tm.label(),
                        rep.envelope.name(),
                        rep.max_link_load,
                        rep.predicted_saturation,
                        rep.predicted_mean_throughput,
                        rep.mean_hops,
                        rep.zero_load_latency_ns,
                        rep.cost_per_unit_throughput,
                    );
                }
            }
        }
        println!();
    }

    // ---- act 3: divergence gate against real sweeps ----------------
    let gate_cfg = DivergenceGateConfig {
        tolerance: args.tolerance,
        ..Default::default()
    };
    let params = RunParams {
        duration_ns: 30_000,
        warmup_ns: 6_000,
        loads: vec![0.2, 0.5, 0.8, 1.0],
        sim: SimConfig::default(),
    };
    let algo = Algorithm::Ugal {
        n_i: 4,
        c: 2.0,
        threshold: None,
    };
    println!("== divergence gate: predicted envelope vs measured uniform sweeps (UGAL-L) ==");
    for (name, net) in families() {
        let policy = RoutePolicy::new(&net, algo);
        let tm = TrafficMatrix::uniform(&net).expect("uniform matrix");
        let pa = analyze_policy(&net, &policy, &tm, &lat).expect("pristine network analyzes");

        let probe = ProbeConfig::default();
        let serial = load_sweep_probed_collect(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &params.loads,
            params.duration_ns,
            params.warmup_ns,
            params.sim,
            probe,
        );
        let parallel = par_load_sweep_probed_collect(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            &params.loads,
            params.duration_ns,
            params.warmup_ns,
            params.sim,
            probe,
            0,
        );
        let measured = measured_saturation(&serial);

        // Per-link residuals at a below-saturation probe point, against
        // the lower (minimal) envelope edge: UGAL holds minimal verdicts
        // when nothing is congested.
        let probe_load = (gate_cfg.probe_load_frac * pa.saturation_lo).clamp(0.05, 1.0);
        let (_, tel) = run_synthetic_probed(
            &net,
            &policy,
            &SyntheticPattern::Uniform,
            probe_load,
            params.duration_ns,
            params.warmup_ns,
            params.sim,
            probe,
        );
        let residuals = link_residuals(&net, &pa.reports[0], &tel, probe_load)
            .expect("probe geometry matches the network");
        let (summary, diags) = divergence_gate("uniform", &pa, measured, Some(&residuals), &gate_cfg);

        let build_manifest = |outcome: &SweepOutcome| {
            let mut m = RunManifest::new(
                format!("{name} uniform analysis cross-check"),
                &net,
                "UGAL-L",
                "uniform",
                params.duration_ns,
                params.warmup_ns,
                params.sim,
            );
            m.set_algorithm(algo);
            m.push_notices(&outcome.notices);
            let mut section = AnalysisManifest::from_policy(&pa);
            section.divergence = Some(summary.clone());
            m.set_analysis(section);
            m.push_curve(Curve {
                label: format!("{name} UGAL-L uniform"),
                points: outcome.points.clone(),
            });
            m.to_json()
        };
        let ser_json = build_manifest(&serial);
        let par_json = build_manifest(&parallel);
        assert_eq!(
            ser_json, par_json,
            "serial and parallel sweeps must produce byte-identical analysis manifests"
        );

        for d in &diags {
            if d.severity == Severity::Error {
                failures += 1;
            }
            println!("  {:5} [{}] {}", d.severity.to_string(), d.code, d.message);
        }
        println!(
            "  {name}: measured {measured:.3} vs envelope [{:.3}, {:.3}] — {}; \
             residuals mean {:.4} / max {:.4} over {} links at load {:.2}",
            summary.predicted_saturation_lo,
            summary.predicted_saturation_hi,
            if summary.passed { "PASS" } else { "FAIL" },
            summary.mean_abs_residual,
            summary.max_abs_residual,
            summary.links_compared,
            summary.probe_load,
        );
        let path = format!("{}{}.json", args.prefix, name.replace(['(', ')'], ""));
        write_atomic(&path, &ser_json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote {path} ({} bytes)\n", ser_json.len());
    }

    // ---- act 4: degraded bounds ------------------------------------
    println!("== degraded bounds: MLFM(4) uniform under repaired tables ==");
    let net = mlfm(4);
    let pristine = {
        let policy = RoutePolicy::new(&net, Algorithm::Minimal);
        let tm = TrafficMatrix::uniform(&net).expect("uniform matrix");
        analyze_minimal(&net, policy.tables(), &tm, &lat).expect("pristine analyzes")
    };
    println!("fault fraction | saturation | unreachable | max link load");
    println!("---------------+------------+-------------+--------------");
    println!(
        "      pristine | {:10.3} | {:11.4} | {:12.3}",
        pristine.predicted_saturation, pristine.unreachable_fraction, pristine.max_link_load
    );
    for (i, frac) in [0.05f64, 0.10, 0.20].into_iter().enumerate() {
        let faults = FaultSet::sample_links(&net, frac, 3 + i as u64);
        let deg = net.degrade(&faults);
        let policy = RoutePolicy::repair(&deg, Algorithm::Minimal);
        let tm = TrafficMatrix::uniform(&deg).expect("uniform matrix");
        match analyze_minimal(&deg, policy.tables(), &tm, &lat) {
            Ok(rep) => println!(
                "         {frac:5.2} | {:10.3} | {:11.4} | {:12.3}",
                rep.predicted_saturation, rep.unreachable_fraction, rep.max_link_load
            ),
            Err(e) => println!("        {frac:5.2} | analysis failed: {e}"),
        }
    }

    if failures > 0 {
        eprintln!("\nd2net-analyze: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!("\nall gates passed");
}

/// The traffic matrices act 2 tabulates for one network. Matrices that
/// need structure the network lacks (e.g. no torus embedding) are
/// skipped silently.
fn matrices(net: &Network) -> Vec<TrafficMatrix> {
    let mut out = Vec::new();
    out.push(TrafficMatrix::uniform(net).expect("uniform matrix"));
    if let Some(SyntheticPattern::Permutation(perm)) = worst_case_exact(net) {
        out.push(
            TrafficMatrix::permutation(net, &perm)
                .expect("worst-case permutation is well-formed")
                .with_label("worst-case"),
        );
    }
    if let Ok(tm) = TrafficMatrix::all_to_all(net) {
        out.push(tm);
    }
    if let Ok(tm) = TrafficMatrix::nearest_neighbor(net) {
        out.push(tm);
    }
    if let Ok(tm) = TrafficMatrix::zipf(net, 1.0) {
        out.push(tm);
    }
    out
}

struct Args {
    tolerance: f64,
    prefix: String,
    full: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        tolerance: 0.1,
        prefix: "MANIFEST_analysis_".to_string(),
        full: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tolerance" => {
                out.tolerance = value("--tolerance").parse().unwrap_or_else(|e| {
                    eprintln!("--tolerance: {e}");
                    std::process::exit(2);
                })
            }
            "--prefix" => out.prefix = value("--prefix"),
            "--full" => out.full = true,
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(2);
            }
        }
    }
    out
}
