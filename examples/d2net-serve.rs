//! Resilient batch sweep service: drains a spool directory of sweep
//! requests into durable run manifests.
//!
//! ```text
//! cargo run --release --example d2net-serve -- SPOOL_DIR \
//!     [--out DIR] [--workers N] [--poll-ms N] [--once] \
//!     [--status-addr HOST:PORT] [--events FILE]
//! ```
//!
//! Each `*.json` file in the spool is one request (the grammar of
//! `SupervisedRequest::from_json`, plus an optional `deadline_ms`
//! wall-clock cap). For each request the server runs a supervised sweep
//! (panic isolation, run budgets, seeded retries — DESIGN.md §15),
//! journaling every completed point to `OUT/<id>.journal` and finally
//! writing `OUT/<id>.manifest.json` atomically. Only then is the
//! request file consumed; a request cut short by its deadline or a
//! shutdown signal stays spooled, and the next pass (or the next server
//! process) resumes it from the journal — the resumed manifest is
//! byte-identical to an uninterrupted run's, modulo the strippable
//! `"supervision"` section.
//!
//! Shutdown: SIGTERM/SIGINT flips a flag the sweeps poll between
//! points. In-flight points finish, journals are flushed, partial
//! manifests are written as `OUT/<id>.partial.json`, and the process
//! exits cleanly. `--once` drains the spool once and exits instead of
//! watching. Requests that fail to parse are consumed into
//! `OUT/<name>.rejected.json` so a poison file cannot wedge the spool.
//!
//! Observability (DESIGN.md §16): `--status-addr` serves `/healthz`,
//! `/readyz` (503 while draining) and `/metrics` (Prometheus text:
//! spool depth, in-flight requests, points/sec, retries, journal
//! resumes, plus the global sweep-progress counters); the bound
//! address is printed at startup, so `--status-addr 127.0.0.1:0` picks
//! a free port discoverably. `--events FILE` writes the
//! `d2net.events/v1` JSONL log — request lifecycle (spooled → started
//! → point progress → completed/rejected/resumed), sweep notices,
//! retries, heartbeats. Watch either live with `d2net-top`.

use d2net::prelude::*;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

struct Opts {
    spool: PathBuf,
    out: PathBuf,
    workers: usize,
    poll_ms: u64,
    once: bool,
    status_addr: Option<String>,
    events: Option<PathBuf>,
}

fn parse_opts() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut spool = None;
    let mut out = None;
    let mut workers = 2usize;
    let mut poll_ms = 200u64;
    let mut once = false;
    let mut status_addr = None;
    let mut events = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| usage("--workers wants a positive integer"))
            }
            "--poll-ms" => {
                poll_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--poll-ms wants an integer"))
            }
            "--once" => once = true,
            "--status-addr" => {
                status_addr =
                    Some(args.next().unwrap_or_else(|| usage("--status-addr wants HOST:PORT")))
            }
            "--events" => {
                events = Some(
                    args.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--events wants a file path")),
                )
            }
            other if spool.is_none() && !other.starts_with('-') => {
                spool = Some(PathBuf::from(other))
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let spool = spool.unwrap_or_else(|| usage("missing SPOOL_DIR"));
    let out = out.unwrap_or_else(|| spool.clone());
    Opts {
        spool,
        out,
        workers,
        poll_ms,
        once,
        status_addr,
        events,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("d2net-serve: {err}");
    eprintln!(
        "usage: d2net-serve SPOOL_DIR [--out DIR] [--workers N] [--poll-ms N] [--once] \
         [--status-addr HOST:PORT] [--events FILE]"
    );
    std::process::exit(2);
}

/// Service-level counters behind `/metrics`, alongside the global
/// sweep-progress counters from `d2net::obs`.
struct ServiceState {
    start: Instant,
    spool_depth: AtomicUsize,
    in_flight: AtomicUsize,
    completed: AtomicUsize,
    rejected: AtomicUsize,
    interrupted: AtomicUsize,
    /// Requests that resumed at least one point from their journal.
    journal_resumes: AtomicUsize,
}

impl ServiceState {
    fn new() -> Self {
        ServiceState {
            start: Instant::now(),
            spool_depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            interrupted: AtomicUsize::new(0),
            journal_resumes: AtomicUsize::new(0),
        }
    }
}

impl StatusSource for ServiceState {
    fn ready(&self) -> bool {
        !STOP.load(Ordering::SeqCst)
    }

    fn metrics_text(&self) -> String {
        let snap = obs::snapshot();
        let mut reg = progress_metrics(&snap);
        let uptime = self.start.elapsed().as_secs_f64();
        let ld = |a: &AtomicUsize| a.load(Ordering::SeqCst);
        reg.gauge("d2net_spool_depth", &[], ld(&self.spool_depth) as f64);
        reg.gauge("d2net_inflight_requests", &[], ld(&self.in_flight) as f64);
        reg.gauge("d2net_uptime_seconds", &[], uptime);
        reg.gauge(
            "d2net_points_per_sec",
            &[],
            snap.points_run as f64 / uptime.max(1e-9),
        );
        reg.counter(
            "d2net_requests_total",
            &[("outcome", "completed")],
            ld(&self.completed) as u64,
        );
        reg.counter(
            "d2net_requests_total",
            &[("outcome", "rejected")],
            ld(&self.rejected) as u64,
        );
        reg.counter(
            "d2net_requests_total",
            &[("outcome", "interrupted")],
            ld(&self.interrupted) as u64,
        );
        reg.counter(
            "d2net_journal_resumes_total",
            &[],
            ld(&self.journal_resumes) as u64,
        );
        prometheus_text(&reg)
    }
}

/// Requests currently spooled, oldest name first (deterministic order).
/// The service's own response files (which share the directory when
/// `--out` is omitted) are never requests.
fn spooled_requests(spool: &Path) -> Vec<PathBuf> {
    const RESPONSES: [&str; 3] = [".manifest.json", ".partial.json", ".rejected.json"];
    let mut reqs: Vec<PathBuf> = match std::fs::read_dir(spool) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .filter(|p| {
                let name = p.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
                !RESPONSES.iter().any(|sfx| name.ends_with(sfx))
            })
            .collect(),
        Err(e) => {
            eprintln!("d2net-serve: WARN cannot read spool {}: {e}", spool.display());
            Vec::new()
        }
    };
    reqs.sort();
    reqs
}

/// One request end to end: parse, run supervised against its journal,
/// respond. Returns whether the request file was consumed.
fn serve_one(path: &Path, out: &Path, state: &ServiceState) -> bool {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "request".into());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("d2net-serve: WARN cannot read {}: {e}", path.display());
            return false;
        }
    };
    obs::emit(
        obs::Level::Info,
        "request_started",
        format!("request {name} started"),
        vec![("id", name.as_str().into())],
    );
    let req = match SupervisedRequest::from_json(&text) {
        Ok(req) => req,
        Err(e) => {
            let reply = format!("{{\"request\":\"{name}\",\"error\":\"{e}\"}}\n");
            let reply_path = out.join(format!("{name}.rejected.json"));
            if let Err(we) = write_atomic(&reply_path, &reply) {
                eprintln!("d2net-serve: WARN cannot write rejection: {we}");
                return false;
            }
            let _ = std::fs::remove_file(path);
            state.rejected.fetch_add(1, Ordering::SeqCst);
            obs::emit(
                obs::Level::Warn,
                "request_rejected",
                format!("request {name} rejected: {e}"),
                vec![("id", name.as_str().into()), ("error", e.as_str().into())],
            );
            println!("d2net-serve: request {name} rejected: {e}");
            return true;
        }
    };
    let deadline = Json::parse(&text)
        .ok()
        .and_then(|doc| doc.get("deadline_ms").and_then(|j| j.as_u64()))
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let stop = move || {
        STOP.load(Ordering::SeqCst) || deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    };
    let journal = out.join(format!("{}.journal", req.id));
    let run = match run_supervised(&req, Some(&journal), Some(&stop)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("d2net-serve: WARN request {} journal failure: {e}", req.id);
            return false;
        }
    };
    if run.summary.skipped_by_resume > 0 {
        state.journal_resumes.fetch_add(1, Ordering::SeqCst);
        obs::emit(
            obs::Level::Info,
            "request_resumed",
            format!(
                "request {} resumed {} point(s) from its journal",
                req.id, run.summary.skipped_by_resume
            ),
            vec![
                ("id", req.id.as_str().into()),
                ("skipped_by_resume", u64::from(run.summary.skipped_by_resume).into()),
            ],
        );
    }
    if run.finished {
        let reply_path = out.join(format!("{}.manifest.json", req.id));
        if let Err(e) = write_atomic(&reply_path, run.manifest.to_json()) {
            eprintln!("d2net-serve: WARN cannot write manifest: {e}");
            return false;
        }
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(path);
        state.completed.fetch_add(1, Ordering::SeqCst);
        obs::emit(
            obs::Level::Info,
            "request_completed",
            format!(
                "request {} finished ({} completed, {} resumed, {} retried)",
                req.id, run.summary.completed, run.summary.skipped_by_resume, run.summary.retried
            ),
            vec![
                ("id", req.id.as_str().into()),
                ("completed", u64::from(run.summary.completed).into()),
                ("resumed", u64::from(run.summary.skipped_by_resume).into()),
                ("retried", u64::from(run.summary.retried).into()),
            ],
        );
        println!(
            "d2net-serve: request {} finished ({} completed, {} resumed, {} retried)",
            req.id, run.summary.completed, run.summary.skipped_by_resume, run.summary.retried
        );
        true
    } else {
        // Cut short: journal stays, request stays spooled; the partial
        // manifest is a progress response, not the final one.
        let reply_path = out.join(format!("{}.partial.json", req.id));
        if let Err(e) = write_atomic(&reply_path, run.manifest.to_json()) {
            eprintln!("d2net-serve: WARN cannot write partial manifest: {e}");
        }
        state.interrupted.fetch_add(1, Ordering::SeqCst);
        obs::emit(
            obs::Level::Info,
            "request_interrupted",
            format!(
                "request {} interrupted ({} completed, {} not run) — will resume",
                req.id, run.summary.completed, run.summary.not_run
            ),
            vec![
                ("id", req.id.as_str().into()),
                ("completed", u64::from(run.summary.completed).into()),
                ("not_run", u64::from(run.summary.not_run).into()),
            ],
        );
        println!(
            "d2net-serve: request {} interrupted ({} completed, {} not run) — will resume",
            req.id, run.summary.completed, run.summary.not_run
        );
        false
    }
}

/// Drains the current spool listing with `workers` request-level
/// workers. Requests are claimed from an atomic cursor so the worker
/// count bounds concurrency without partitioning the list up front.
fn drain(reqs: &[PathBuf], out: &Path, workers: usize, state: &ServiceState) -> usize {
    let cursor = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(reqs.len()).max(1) {
            scope.spawn(|| loop {
                if STOP.load(Ordering::SeqCst) {
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(path) = reqs.get(idx) else { break };
                state.in_flight.fetch_add(1, Ordering::SeqCst);
                if serve_one(path, out, state) {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
                state.in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    consumed.load(Ordering::SeqCst)
}

fn main() {
    let opts = parse_opts();
    install_signal_handlers();
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("d2net-serve: cannot create {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    if let Some(path) = &opts.events {
        match obs::FileSink::create(path) {
            Ok(sink) => obs::install_sink(sink),
            Err(e) => {
                eprintln!("d2net-serve: cannot create event log {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    } else if opts.status_addr.is_some() {
        // Progress counters feed /metrics even without an event log.
        obs::enable();
    }
    let state = Arc::new(ServiceState::new());
    let status_server = opts.status_addr.as_ref().map(|addr| {
        let source: Arc<dyn StatusSource> = state.clone();
        match StatusServer::start(addr, source) {
            Ok(server) => {
                // Printed so callers binding port 0 can discover it.
                println!("d2net-serve: status listening on {}", server.local_addr());
                server
            }
            Err(e) => {
                eprintln!("d2net-serve: cannot bind status endpoint {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    println!(
        "d2net-serve: watching {} ({} workers{})",
        opts.spool.display(),
        opts.workers,
        if opts.once { ", single pass" } else { "" }
    );
    obs::emit(
        obs::Level::Info,
        "service_start",
        format!("watching {} with {} workers", opts.spool.display(), opts.workers),
        vec![
            ("spool", opts.spool.display().to_string().into()),
            ("workers", opts.workers.into()),
        ],
    );
    let mut seen: HashSet<PathBuf> = HashSet::new();
    let mut last_heartbeat = Instant::now();
    loop {
        let reqs = spooled_requests(&opts.spool);
        state.spool_depth.store(reqs.len(), Ordering::SeqCst);
        for req in &reqs {
            if seen.insert(req.clone()) {
                let name = req
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "request".into());
                obs::emit(
                    obs::Level::Info,
                    "request_spooled",
                    format!("request {name} spooled"),
                    vec![("id", name.into())],
                );
            }
        }
        if !reqs.is_empty() {
            drain(&reqs, &opts.out, opts.workers, &state);
        }
        if obs::enabled() && last_heartbeat.elapsed() >= Duration::from_secs(5) {
            last_heartbeat = Instant::now();
            let snap = obs::snapshot();
            obs::emit(
                obs::Level::Debug,
                "heartbeat",
                format!(
                    "{} spooled, {} points run, {} events processed",
                    reqs.len(),
                    snap.points_run,
                    snap.events_processed
                ),
                vec![
                    ("spool_depth", reqs.len().into()),
                    ("points_run", snap.points_run.into()),
                    ("points_total", snap.points_total.into()),
                    ("events_processed", snap.events_processed.into()),
                    ("uptime_s", state.start.elapsed().as_secs_f64().into()),
                ],
            );
        }
        if STOP.load(Ordering::SeqCst) {
            println!("d2net-serve: shutdown signal received; drained and exiting");
            break;
        }
        if opts.once {
            let leftover = spooled_requests(&opts.spool).len();
            println!("d2net-serve: spool drained ({leftover} request(s) left)");
            break;
        }
        std::thread::sleep(Duration::from_millis(opts.poll_ms));
    }
    obs::emit(
        obs::Level::Info,
        "service_stop",
        "service exiting".to_string(),
        Vec::new(),
    );
    if let Some(server) = status_server {
        server.shutdown();
    }
    let _ = obs::take_sink();
}
