//! Resilient batch sweep service: drains a spool directory of sweep
//! requests into durable run manifests.
//!
//! ```text
//! cargo run --release --example d2net-serve -- SPOOL_DIR \
//!     [--out DIR] [--workers N] [--poll-ms N] [--once]
//! ```
//!
//! Each `*.json` file in the spool is one request (the grammar of
//! `SupervisedRequest::from_json`, plus an optional `deadline_ms`
//! wall-clock cap). For each request the server runs a supervised sweep
//! (panic isolation, run budgets, seeded retries — DESIGN.md §15),
//! journaling every completed point to `OUT/<id>.journal` and finally
//! writing `OUT/<id>.manifest.json` atomically. Only then is the
//! request file consumed; a request cut short by its deadline or a
//! shutdown signal stays spooled, and the next pass (or the next server
//! process) resumes it from the journal — the resumed manifest is
//! byte-identical to an uninterrupted run's, modulo the strippable
//! `"supervision"` section.
//!
//! Shutdown: SIGTERM/SIGINT flips a flag the sweeps poll between
//! points. In-flight points finish, journals are flushed, partial
//! manifests are written as `OUT/<id>.partial.json`, and the process
//! exits cleanly. `--once` drains the spool once and exits instead of
//! watching. Requests that fail to parse are consumed into
//! `OUT/<name>.rejected.json` so a poison file cannot wedge the spool.

use d2net::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

struct Opts {
    spool: PathBuf,
    out: PathBuf,
    workers: usize,
    poll_ms: u64,
    once: bool,
}

fn parse_opts() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut spool = None;
    let mut out = None;
    let mut workers = 2usize;
    let mut poll_ms = 200u64;
    let mut once = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| usage("--workers wants a positive integer"))
            }
            "--poll-ms" => {
                poll_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--poll-ms wants an integer"))
            }
            "--once" => once = true,
            other if spool.is_none() && !other.starts_with('-') => {
                spool = Some(PathBuf::from(other))
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let spool = spool.unwrap_or_else(|| usage("missing SPOOL_DIR"));
    let out = out.unwrap_or_else(|| spool.clone());
    Opts {
        spool,
        out,
        workers,
        poll_ms,
        once,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("d2net-serve: {err}");
    eprintln!(
        "usage: d2net-serve SPOOL_DIR [--out DIR] [--workers N] [--poll-ms N] [--once]"
    );
    std::process::exit(2);
}

/// Requests currently spooled, oldest name first (deterministic order).
/// The service's own response files (which share the directory when
/// `--out` is omitted) are never requests.
fn spooled_requests(spool: &Path) -> Vec<PathBuf> {
    const RESPONSES: [&str; 3] = [".manifest.json", ".partial.json", ".rejected.json"];
    let mut reqs: Vec<PathBuf> = match std::fs::read_dir(spool) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .filter(|p| {
                let name = p.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
                !RESPONSES.iter().any(|sfx| name.ends_with(sfx))
            })
            .collect(),
        Err(e) => {
            eprintln!("d2net-serve: WARN cannot read spool {}: {e}", spool.display());
            Vec::new()
        }
    };
    reqs.sort();
    reqs
}

/// One request end to end: parse, run supervised against its journal,
/// respond. Returns whether the request file was consumed.
fn serve_one(path: &Path, out: &Path) -> bool {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "request".into());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("d2net-serve: WARN cannot read {}: {e}", path.display());
            return false;
        }
    };
    let req = match SupervisedRequest::from_json(&text) {
        Ok(req) => req,
        Err(e) => {
            let reply = format!("{{\"request\":\"{name}\",\"error\":\"{e}\"}}\n");
            let reply_path = out.join(format!("{name}.rejected.json"));
            if let Err(we) = write_atomic(&reply_path, &reply) {
                eprintln!("d2net-serve: WARN cannot write rejection: {we}");
                return false;
            }
            let _ = std::fs::remove_file(path);
            println!("d2net-serve: request {name} rejected: {e}");
            return true;
        }
    };
    let deadline = Json::parse(&text)
        .ok()
        .and_then(|doc| doc.get("deadline_ms").and_then(|j| j.as_u64()))
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let stop = move || {
        STOP.load(Ordering::SeqCst) || deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    };
    let journal = out.join(format!("{}.journal", req.id));
    let run = match run_supervised(&req, Some(&journal), Some(&stop)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("d2net-serve: WARN request {} journal failure: {e}", req.id);
            return false;
        }
    };
    if run.finished {
        let reply_path = out.join(format!("{}.manifest.json", req.id));
        if let Err(e) = write_atomic(&reply_path, run.manifest.to_json()) {
            eprintln!("d2net-serve: WARN cannot write manifest: {e}");
            return false;
        }
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(path);
        println!(
            "d2net-serve: request {} finished ({} completed, {} resumed, {} retried)",
            req.id, run.summary.completed, run.summary.skipped_by_resume, run.summary.retried
        );
        true
    } else {
        // Cut short: journal stays, request stays spooled; the partial
        // manifest is a progress response, not the final one.
        let reply_path = out.join(format!("{}.partial.json", req.id));
        if let Err(e) = write_atomic(&reply_path, run.manifest.to_json()) {
            eprintln!("d2net-serve: WARN cannot write partial manifest: {e}");
        }
        println!(
            "d2net-serve: request {} interrupted ({} completed, {} not run) — will resume",
            req.id, run.summary.completed, run.summary.not_run
        );
        false
    }
}

/// Drains the current spool listing with `workers` request-level
/// workers. Requests are claimed from an atomic cursor so the worker
/// count bounds concurrency without partitioning the list up front.
fn drain(reqs: &[PathBuf], out: &Path, workers: usize) -> usize {
    let cursor = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(reqs.len()).max(1) {
            scope.spawn(|| loop {
                if STOP.load(Ordering::SeqCst) {
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::SeqCst);
                let Some(path) = reqs.get(idx) else { break };
                if serve_one(path, out) {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    consumed.load(Ordering::SeqCst)
}

fn main() {
    let opts = parse_opts();
    install_signal_handlers();
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("d2net-serve: cannot create {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    println!(
        "d2net-serve: watching {} ({} workers{})",
        opts.spool.display(),
        opts.workers,
        if opts.once { ", single pass" } else { "" }
    );
    loop {
        let reqs = spooled_requests(&opts.spool);
        if !reqs.is_empty() {
            drain(&reqs, &opts.out, opts.workers);
        }
        if STOP.load(Ordering::SeqCst) {
            println!("d2net-serve: shutdown signal received; drained and exiting");
            break;
        }
        if opts.once {
            let leftover = spooled_requests(&opts.spool).len();
            println!("d2net-serve: spool drained ({leftover} request(s) left)");
            break;
        }
        std::thread::sleep(Duration::from_millis(opts.poll_ms));
    }
}
