//! Shard-smoke gate: intra-run sharded sweeps must be byte-identical
//! to the serial engine, manifests and all.
//!
//! ```text
//! cargo run --release --example d2net-shard [-- --out FILE]
//! ```
//!
//! Runs one load sweep on a Slim Fly under Valiant routing four ways —
//! the serial engine, the 2-shard and 3-shard engines through the
//! serial sweep harness, and the 2-shard engine fanned across the
//! worker pool at two different thread budgets (which `par_load_sweep*`
//! splits between point workers and shards, DESIGN.md §14) — builds the
//! same run manifest from each, and asserts every manifest is
//! byte-identical to the serial one. The written file (default
//! `SHARD_smoke.json`) additionally carries the `"sharding"` section
//! recording how the thread budget was split; the byte comparison runs
//! before that section is attached, since it is the one part of the
//! manifest that legitimately differs from an unsharded run.

use d2net::prelude::*;

fn main() {
    let out = parse_out();
    let net = slim_fly(5, SlimFlyP::Floor);
    let policy = RoutePolicy::new(&net, Algorithm::Valiant);
    let pattern = SyntheticPattern::Uniform;
    let params = RunParams {
        duration_ns: 30_000,
        warmup_ns: 6_000,
        loads: vec![0.2, 0.5, 0.8],
        sim: SimConfig::default(),
    };
    let label = format!("{} INR uniform", net.name());

    let manifest_of = |sweep: &SweepOutcome| -> RunManifest {
        let mut m = RunManifest::new(
            format!("shard smoke: {label}"),
            &net,
            "INR",
            "uniform",
            params.duration_ns,
            params.warmup_ns,
            params.sim,
        );
        m.push_curve(Curve {
            label: label.clone(),
            points: sweep.points.clone(),
        });
        m.push_notices(&sweep.notices);
        m
    };

    let mut cfg = params.sim;
    cfg.shards = 1;
    let serial = load_sweep_collect(
        &net,
        &policy,
        &pattern,
        &params.loads,
        params.duration_ns,
        params.warmup_ns,
        cfg,
    );
    let serial_json = manifest_of(&serial).to_json();

    // Sharded engines through the serial sweep harness: two shard
    // counts, so a layout-dependent bug cannot hide behind one split.
    for shards in [2u32, 3] {
        let mut cfg = params.sim;
        cfg.shards = shards;
        let sharded = load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &params.loads,
            params.duration_ns,
            params.warmup_ns,
            cfg,
        );
        let json = manifest_of(&sharded).to_json();
        assert_eq!(
            json, serial_json,
            "{shards}-shard sweep manifest diverged from serial"
        );
        println!(
            "{shards}-shard manifest == serial manifest ({} bytes)",
            json.len()
        );
    }

    // Sharded engines under the parallel harness at two thread budgets:
    // the budget is split between point workers and shards, and neither
    // split may change a byte of output.
    let mut cfg = params.sim;
    cfg.shards = 2;
    let mut final_manifest = None;
    for threads in [2usize, 6] {
        let par = par_load_sweep_collect(
            &net,
            &policy,
            &pattern,
            &params.loads,
            params.duration_ns,
            params.warmup_ns,
            cfg,
            threads,
        );
        let json = manifest_of(&par).to_json();
        assert_eq!(
            json, serial_json,
            "2-shard parallel sweep manifest diverged from serial at {threads} threads"
        );
        println!("2-shard x {threads}-thread manifest == serial manifest");
        final_manifest = Some((manifest_of(&par), threads));
    }

    let (mut manifest, threads) = final_manifest.expect("two budgets ran");
    manifest.set_sharding(ShardingManifest {
        shards: cfg.shards,
        point_workers: (threads as u32 / cfg.shards).max(1),
        thread_budget: threads as u32,
    });
    let json = manifest.to_json();
    write_atomic(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out} ({} bytes)", json.len());
}

fn parse_out() -> String {
    let mut args = std::env::args().skip(1);
    let mut out = "SHARD_smoke.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a value"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    out
}
