//! Quickstart: build the three cost-effective diameter-two topologies,
//! inspect their cost/scale properties, and run a short uniform-traffic
//! simulation under adaptive routing on each.
//!
//! Run with: `cargo run --release --example quickstart`

use d2net::prelude::*;

fn main() {
    println!("== d2net quickstart ==\n");

    // 1. Build one instance of each topology family (reduced scale).
    let nets = vec![
        slim_fly(7, SlimFlyP::Floor),
        mlfm(8),
        oft(6),
        fat_tree2(16), // the classic reference design
    ];

    println!(
        "{:14} | {:>6} | {:>7} | {:>5} | {:>10} | {:>10}",
        "topology", "nodes", "routers", "radix", "ports/node", "links/node"
    );
    println!("{}", "-".repeat(70));
    for net in &nets {
        let n = net.num_nodes() as f64;
        println!(
            "{:14} | {:>6} | {:>7} | {:>5} | {:>10.2} | {:>10.2}",
            net.name(),
            net.num_nodes(),
            net.num_routers(),
            net.radix(0),
            net.total_ports() as f64 / n,
            net.total_links() as f64 / n,
        );
    }

    // 2. Verify the headline structural property: diameter two between
    //    all endpoint routers, for every topology.
    println!();
    for net in &nets {
        println!(
            "{:14} endpoint diameter = {}",
            net.name(),
            net.endpoint_diameter()
        );
    }

    // 3. Simulate 30 us of global uniform traffic at 60% load under
    //    adaptive (UGAL-L) routing.
    println!("\nuniform traffic at 60% load, UGAL-L adaptive routing:");
    println!(
        "{:14} | {:>9} | {:>12} | {:>9}",
        "topology", "accepted", "avg delay ns", "indirect%"
    );
    println!("{}", "-".repeat(55));
    for net in nets.iter().take(3) {
        let (_, algo) = best_adaptive(net);
        let policy = RoutePolicy::new(net, algo);
        let stats = run_synthetic(
            net,
            &policy,
            &SyntheticPattern::Uniform,
            0.6,
            30_000,
            6_000,
            SimConfig::default(),
        );
        assert!(!stats.deadlocked);
        println!(
            "{:14} | {:>9.4} | {:>12.1} | {:>8.1}%",
            net.name(),
            stats.throughput,
            stats.avg_delay_ns,
            100.0 * stats.indirect_packets as f64 / stats.delivered_packets.max(1) as f64,
        );
    }

    println!("\nDone. See `examples/paper_figures.rs` for the full evaluation harness.");
}
