//! Nearest-neighbor (3-D stencil halo) exchange benchmark (paper §4.4,
//! Fig. 14): processes arranged in the largest 3-D torus that fits each
//! topology exchange halos with their six neighbors under the paper's
//! contiguous rank mapping.
//!
//! Usage: `cargo run --release --example nn_stencil [-- --bytes 65536]`

use d2net::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // The paper exchanges 512 KB per pair; default smaller here so the
    // reduced-scale example finishes in seconds. Pass --bytes 524288 for
    // the paper's size.
    let bytes = args
        .iter()
        .position(|a| a == "--bytes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--bytes takes an integer"))
        .unwrap_or(32_768u64);

    let nets = eval_topologies(Scale::Reduced);
    println!("== nearest-neighbor exchange: {bytes} B per halo ==\n");
    for net in &nets {
        let dims = torus_dims_for(net);
        println!(
            "{:16} -> {}x{}x{} torus over {} of {} nodes",
            net.name(),
            dims[0],
            dims[1],
            dims[2],
            dims[0] * dims[1] * dims[2],
            net.num_nodes()
        );
    }
    println!();

    let params = RunParams::reduced();
    let rows = fig14(&nets, bytes, &params);
    print!("{}", render_exchange(&rows));

    println!(
        "\nPaper's observations to compare against: MIN performs worst \
         (few routes carry whole planes of traffic), INR reaches ~70%, \
         adaptive routing improves on INR except on the OFT, and on the \
         MLFM approaches full bandwidth (its torus maps onto the \
         router/layer/column structure)."
    );
}
