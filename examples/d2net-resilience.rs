//! Resilience demo: throughput/latency versus link-failure fraction on
//! the paper's three main diameter-two families.
//!
//! ```text
//! cargo run --release --example d2net-resilience [-- --out FILE]
//! ```
//!
//! For each topology the sweep samples 0 %, 5 % and 10 % of the links
//! as failed, repairs the routing tables around the damage, certifies
//! the degraded configuration with the static verifier, and simulates
//! uniform traffic on what is left. Injected-but-unroutable traffic is
//! dropped (and counted) instead of wedging the network; the per-point
//! record lands in the run manifest's `"faults"` section — the target
//! of ci.sh's `--fault-smoke` gate.
//!
//! With `--out FILE` the JSON manifests (one per topology, as a JSON
//! array) are written to `FILE`; otherwise they print to stdout.

use d2net::prelude::*;

fn main() {
    let out = out_path();
    let duration_ns = 30_000;
    let warmup_ns = 6_000;
    let load = 0.3;
    let fractions = failure_fractions(0.10, 3);
    let cfg = SimConfig::default();

    let nets = vec![
        slim_fly(5, SlimFlyP::Floor),
        mlfm(4),
        oft(4),
    ];
    let mut manifests = Vec::new();
    for net in &nets {
        let curve = resilience_sweep_par(
            net,
            Algorithm::Minimal,
            &SyntheticPattern::Uniform,
            load,
            &fractions,
            duration_ns,
            warmup_ns,
            cfg,
            0,
        );
        print_curve(net, &curve);
        let mut m = RunManifest::new(
            format!("resilience sweep: {}", net.name()),
            net,
            "MIN (fault-repaired)",
            "uniform",
            duration_ns,
            warmup_ns,
            cfg,
        );
        m.push_notices(&curve.notices);
        m.set_faults(curve.faults_manifest());
        m.push_curve(curve.to_curve());
        manifests.push(m.to_json());
    }

    let json = format!("[\n{}\n]\n", manifests.join(",\n"));
    match out {
        Some(path) => {
            write_atomic(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn out_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--out requires a file path");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn print_curve(net: &Network, curve: &ResilienceCurve) {
    println!("== {} ==", curve.label);
    println!(
        "{:>9} {:>6} {:>8} {:>11} {:>10} {:>9} {:>8} {:>8}",
        "fraction", "links", "routers", "unreachable", "certified", "thruput", "dropped", "delay"
    );
    for p in &curve.points {
        println!(
            "{:>8.1}% {:>6} {:>8} {:>11} {:>10} {:>9.3} {:>8} {:>7.0}n",
            p.fraction * 100.0,
            p.failed_links,
            p.failed_routers,
            p.unreachable_pairs,
            p.certified,
            p.stats.throughput,
            p.stats.dropped_packets,
            p.stats.avg_delay_ns,
        );
        assert!(
            !p.stats.deadlocked,
            "{} wedged at failure fraction {}",
            net.name(),
            p.fraction
        );
    }
    for n in &curve.notices {
        println!("notice[{}]: {}", n.index, n.message);
    }
    println!();
}
