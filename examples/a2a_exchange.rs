//! All-to-all exchange benchmark (paper §4.4, Fig. 13): each process
//! sends one message to every other process; we report the effective
//! throughput (total data / completion time, per node) under minimal,
//! indirect-random and adaptive routing.
//!
//! Usage: `cargo run --release --example a2a_exchange [-- --bytes 7680 --topo all]`

use d2net::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bytes = arg_value(&args, "--bytes")
        .map(|v| v.parse().expect("--bytes takes an integer"))
        .unwrap_or(7_680u64); // the paper's 7.5 KB (30 packets)
    let topo = arg_value(&args, "--topo").unwrap_or_else(|| "all".into());

    let nets: Vec<Network> = eval_topologies(Scale::Reduced)
        .into_iter()
        .filter(|n| topo == "all" || n.name().to_lowercase().contains(&topo.to_lowercase()))
        .collect();
    assert!(!nets.is_empty(), "no topology matches --topo {topo}");

    println!("== all-to-all exchange: {bytes} B per pair ==\n");
    let params = RunParams::reduced();
    let rows = fig13(&nets, bytes, &params);
    print!("{}", render_exchange(&rows));

    // The paper's observation: MIN and adaptive sustain ~full bandwidth,
    // INR about half.
    for net in &nets {
        let get = |tag: &str| {
            rows.iter()
                .find(|r| r.topology == net.name() && r.routing.starts_with(tag))
                .map(|r| r.stats.effective_throughput)
                .unwrap_or(0.0)
        };
        println!(
            "\n{}: MIN/INR ratio = {:.2} (paper: ~2x)",
            net.name(),
            get("MIN") / get("INR").max(1e-9)
        );
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
