#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline — all dependencies are
# vendored in vendor/ and wired up via [workspace.dependencies].
#
# Usage: ci.sh [--bench-smoke] [--fault-smoke] [--trace-smoke] [--decision-smoke]
#              [--analysis-smoke] [--shard-smoke]
#   --bench-smoke     additionally compiles every benchmark and runs a
#                     smoke-sized bench_sweep, writing BENCH_sweep.json.
#   --fault-smoke     additionally runs the tiny resilience sweep and
#                     checks its manifest carries a "faults" section.
#   --trace-smoke     additionally runs the traced demo sweep (which
#                     asserts serial == parallel trace bytes itself) and
#                     checks the Perfetto file and the manifest's "trace"
#                     section landed.
#   --decision-smoke  additionally runs the ledgered UGAL-L/UGAL-G sweeps
#                     (which assert serial == parallel manifest bytes
#                     themselves), checks both manifests carry
#                     "algorithm" and "decisions" sections, and runs
#                     d2net-compare over them expecting the hop-2
#                     blindness attribution.
#   --analysis-smoke  additionally runs the analytic-oracle gate
#                     (d2net-analyze: §4.2 exactness, divergence gate,
#                     serial == parallel manifest bytes), checks the
#                     manifests carry "analysis" sections with passing
#                     verdicts, and runs a smoke-sized bench_analysis
#                     writing BENCH_analysis.json.
#   --shard-smoke     additionally runs the intra-run sharding gate
#                     (d2net-shard: sharded sweep manifests byte-equal
#                     the serial engine's, through the serial harness at
#                     two shard counts and the parallel harness at two
#                     thread budgets) and checks the written manifest
#                     carries a "sharding" section.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

BENCH_SMOKE=0
FAULT_SMOKE=0
TRACE_SMOKE=0
DECISION_SMOKE=0
ANALYSIS_SMOKE=0
SHARD_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --fault-smoke) FAULT_SMOKE=1 ;;
    --trace-smoke) TRACE_SMOKE=1 ;;
    --decision-smoke) DECISION_SMOKE=1 ;;
    --analysis-smoke) ANALYSIS_SMOKE=1 ;;
    --shard-smoke) SHARD_SMOKE=1 ;;
    *) echo "ci.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test -q --release --workspace

echo "== determinism gates, single-threaded test runner =="
# The suite itself exercises the worker pool; running it under both the
# default and a single-threaded test runner rules out any dependence on
# harness-level interleaving.
cargo test -q --release --test determinism -- --test-threads=1

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static verification gate (paper-standard configs) =="
cargo run --release --example d2net-verify -- --paper-gate

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "== bench smoke: compile benches, time a reduced sweep =="
  cargo bench --no-run --workspace
  D2NET_BENCH_DURATION_NS=10000 D2NET_BENCH_LOAD_STEPS=4 \
    cargo run --release -p d2net-bench --bin bench_sweep -- BENCH_sweep.json
  grep -q '"schema":"d2net.bench-sweep/v1"' BENCH_sweep.json
fi

if [[ "$FAULT_SMOKE" == "1" ]]; then
  echo "== fault smoke: resilience sweep over SF/MLFM/OFT, manifest gate =="
  cargo run --release --example d2net-resilience -- --out FAULT_smoke.json
  grep -q '"faults"' FAULT_smoke.json
  grep -q '"unreachable_pairs"' FAULT_smoke.json
fi

if [[ "$TRACE_SMOKE" == "1" ]]; then
  echo "== trace smoke: traced sweep, Perfetto export + manifest gate =="
  cargo run --release --example d2net-trace -- \
    --rate 16 --out TRACE_smoke.json --manifest TRACE_manifest.json
  grep -q '"traceEvents"' TRACE_smoke.json
  grep -q '"schema":"d2net.chrome-trace/v1"' TRACE_smoke.json
  grep -q '"trace"' TRACE_manifest.json
  grep -q '"events_popped"' TRACE_manifest.json
fi

if [[ "$DECISION_SMOKE" == "1" ]]; then
  echo "== decision smoke: ledgered UGAL-L/UGAL-G sweeps, manifest + compare gate =="
  cargo run --release --example d2net-decisions -- \
    --manifest-l DECISIONS_ugal_l.json --manifest-g DECISIONS_ugal_g.json
  grep -q '"decisions"' DECISIONS_ugal_l.json
  grep -q '"decisions"' DECISIONS_ugal_g.json
  grep -q '"algorithm":{"kind":"ugal"' DECISIONS_ugal_l.json
  grep -q '"algorithm":{"kind":"ugal_g"' DECISIONS_ugal_g.json
  grep -q '"misroute_rate"' DECISIONS_ugal_l.json
  cargo run --release --example d2net-compare -- \
    DECISIONS_ugal_l.json DECISIONS_ugal_g.json | tee COMPARE_decisions.txt
  grep -q 'first divergence at load' COMPARE_decisions.txt
  grep -q 'first-hop-only cost visibility' COMPARE_decisions.txt
fi

if [[ "$ANALYSIS_SMOKE" == "1" ]]; then
  echo "== analysis smoke: analytic oracle gate + static-vs-sim bench =="
  cargo run --release --example d2net-analyze -- --prefix ANALYSIS_smoke_
  for f in ANALYSIS_smoke_SF5.json ANALYSIS_smoke_MLFM4.json ANALYSIS_smoke_OFT4.json; do
    grep -q '"analysis"' "$f"
    grep -q '"predicted_saturation"' "$f"
    grep -q '"passed":true' "$f"
  done
  D2NET_BENCH_DURATION_NS=10000 D2NET_BENCH_LOAD_STEPS=3 \
    cargo run --release -p d2net-bench --bin bench_analysis -- BENCH_analysis.json
  grep -q '"schema":"d2net.bench-analysis/v1"' BENCH_analysis.json
  grep -q '"gate_passed":true' BENCH_analysis.json
fi

if [[ "$SHARD_SMOKE" == "1" ]]; then
  echo "== shard smoke: sharded sweeps byte-equal serial, manifest gate =="
  cargo run --release --example d2net-shard -- --out SHARD_smoke.json
  grep -q '"sharding"' SHARD_smoke.json
  grep -q '"shards":2' SHARD_smoke.json
  grep -q '"thread_budget":6' SHARD_smoke.json
fi

echo "ci.sh: all green"
