#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline — all dependencies are
# vendored in vendor/ and wired up via [workspace.dependencies].
#
# Usage: ci.sh [--bench-smoke] [--fault-smoke] [--trace-smoke] [--decision-smoke]
#              [--analysis-smoke] [--shard-smoke] [--serve-smoke] [--obs-smoke]
#              [--bench-diff]
#   --bench-smoke     additionally compiles every benchmark and runs a
#                     smoke-sized bench_sweep, writing BENCH_sweep.json.
#   --fault-smoke     additionally runs the tiny resilience sweep and
#                     checks its manifest carries a "faults" section.
#   --trace-smoke     additionally runs the traced demo sweep (which
#                     asserts serial == parallel trace bytes itself) and
#                     checks the Perfetto file and the manifest's "trace"
#                     section landed.
#   --decision-smoke  additionally runs the ledgered UGAL-L/UGAL-G sweeps
#                     (which assert serial == parallel manifest bytes
#                     themselves), checks both manifests carry
#                     "algorithm" and "decisions" sections, and runs
#                     d2net-compare over them expecting the hop-2
#                     blindness attribution.
#   --analysis-smoke  additionally runs the analytic-oracle gate
#                     (d2net-analyze: §4.2 exactness, divergence gate,
#                     serial == parallel manifest bytes), checks the
#                     manifests carry "analysis" sections with passing
#                     verdicts, and runs a smoke-sized bench_analysis
#                     writing BENCH_analysis.json.
#   --shard-smoke     additionally runs the intra-run sharding gate
#                     (d2net-shard: sharded sweep manifests byte-equal
#                     the serial engine's, through the serial harness at
#                     two shard counts and the parallel harness at two
#                     thread budgets) and checks the written manifest
#                     carries a "sharding" section.
#   --serve-smoke     additionally runs the batch sweep service gate
#                     (d2net-serve): spools two requests, SIGTERMs the
#                     server mid-sweep, restarts it with --once, and
#                     asserts the resumed manifest byte-equals an
#                     uninterrupted run's once the "supervision" section
#                     is stripped — and that the section records the
#                     resume.
#   --obs-smoke       additionally runs the observability gate: starts
#                     d2net-serve with a status endpoint and an event
#                     log, probes /healthz and /metrics through
#                     d2net-top (which enforces the exposition grammar),
#                     checks the service gauges, and asserts the event
#                     log carries the schema header plus the service and
#                     request lifecycle codes.
#   --bench-diff      additionally runs the bench-regression gate: two
#                     real smoke-sized bench_engine runs appended to a
#                     history file, bench_diff compare produces coded
#                     verdicts, and a planted regression (--scale) must
#                     trip the gate with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

BENCH_SMOKE=0
FAULT_SMOKE=0
TRACE_SMOKE=0
DECISION_SMOKE=0
ANALYSIS_SMOKE=0
SHARD_SMOKE=0
SERVE_SMOKE=0
OBS_SMOKE=0
BENCH_DIFF=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --fault-smoke) FAULT_SMOKE=1 ;;
    --trace-smoke) TRACE_SMOKE=1 ;;
    --decision-smoke) DECISION_SMOKE=1 ;;
    --analysis-smoke) ANALYSIS_SMOKE=1 ;;
    --shard-smoke) SHARD_SMOKE=1 ;;
    --serve-smoke) SERVE_SMOKE=1 ;;
    --obs-smoke) OBS_SMOKE=1 ;;
    --bench-diff) BENCH_DIFF=1 ;;
    *) echo "ci.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test -q --release --workspace

echo "== determinism gates, single-threaded test runner =="
# The suite itself exercises the worker pool; running it under both the
# default and a single-threaded test runner rules out any dependence on
# harness-level interleaving.
cargo test -q --release --test determinism -- --test-threads=1

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static verification gate (paper-standard configs) =="
cargo run --release --example d2net-verify -- --paper-gate

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "== bench smoke: compile benches, time a reduced sweep =="
  cargo bench --no-run --workspace
  D2NET_BENCH_DURATION_NS=10000 D2NET_BENCH_LOAD_STEPS=4 \
    cargo run --release -p d2net-bench --bin bench_sweep -- BENCH_sweep.json
  grep -q '"schema":"d2net.bench-sweep/v1"' BENCH_sweep.json
fi

if [[ "$FAULT_SMOKE" == "1" ]]; then
  echo "== fault smoke: resilience sweep over SF/MLFM/OFT, manifest gate =="
  cargo run --release --example d2net-resilience -- --out FAULT_smoke.json
  grep -q '"faults"' FAULT_smoke.json
  grep -q '"unreachable_pairs"' FAULT_smoke.json
fi

if [[ "$TRACE_SMOKE" == "1" ]]; then
  echo "== trace smoke: traced sweep, Perfetto export + manifest gate =="
  cargo run --release --example d2net-trace -- \
    --rate 16 --out TRACE_smoke.json --manifest TRACE_manifest.json
  grep -q '"traceEvents"' TRACE_smoke.json
  grep -q '"schema":"d2net.chrome-trace/v1"' TRACE_smoke.json
  grep -q '"trace"' TRACE_manifest.json
  grep -q '"events_popped"' TRACE_manifest.json
fi

if [[ "$DECISION_SMOKE" == "1" ]]; then
  echo "== decision smoke: ledgered UGAL-L/UGAL-G sweeps, manifest + compare gate =="
  cargo run --release --example d2net-decisions -- \
    --manifest-l DECISIONS_ugal_l.json --manifest-g DECISIONS_ugal_g.json
  grep -q '"decisions"' DECISIONS_ugal_l.json
  grep -q '"decisions"' DECISIONS_ugal_g.json
  grep -q '"algorithm":{"kind":"ugal"' DECISIONS_ugal_l.json
  grep -q '"algorithm":{"kind":"ugal_g"' DECISIONS_ugal_g.json
  grep -q '"misroute_rate"' DECISIONS_ugal_l.json
  cargo run --release --example d2net-compare -- \
    DECISIONS_ugal_l.json DECISIONS_ugal_g.json | tee COMPARE_decisions.txt
  grep -q 'first divergence at load' COMPARE_decisions.txt
  grep -q 'first-hop-only cost visibility' COMPARE_decisions.txt
fi

if [[ "$ANALYSIS_SMOKE" == "1" ]]; then
  echo "== analysis smoke: analytic oracle gate + static-vs-sim bench =="
  cargo run --release --example d2net-analyze -- --prefix ANALYSIS_smoke_
  for f in ANALYSIS_smoke_SF5.json ANALYSIS_smoke_MLFM4.json ANALYSIS_smoke_OFT4.json; do
    grep -q '"analysis"' "$f"
    grep -q '"predicted_saturation"' "$f"
    grep -q '"passed":true' "$f"
  done
  D2NET_BENCH_DURATION_NS=10000 D2NET_BENCH_LOAD_STEPS=3 \
    cargo run --release -p d2net-bench --bin bench_analysis -- BENCH_analysis.json
  grep -q '"schema":"d2net.bench-analysis/v1"' BENCH_analysis.json
  grep -q '"gate_passed":true' BENCH_analysis.json
fi

if [[ "$SHARD_SMOKE" == "1" ]]; then
  echo "== shard smoke: sharded sweeps byte-equal serial, manifest gate =="
  cargo run --release --example d2net-shard -- --out SHARD_smoke.json
  grep -q '"sharding"' SHARD_smoke.json
  grep -q '"shards":2' SHARD_smoke.json
  grep -q '"thread_budget":6' SHARD_smoke.json
fi

if [[ "$SERVE_SMOKE" == "1" ]]; then
  echo "== serve smoke: spool, SIGTERM mid-sweep, resume, byte-equality gate =="
  cargo build --release --example d2net-serve
  SERVE=target/release/examples/d2net-serve
  SPOOL=$(mktemp -d)
  trap 'rm -rf "$SPOOL"' EXIT
  mkdir -p "$SPOOL/spool" "$SPOOL/out" "$SPOOL/clean"
  # Request A is sized so SIGTERM lands mid-sweep (8 points x 60 us);
  # request B is small and should finish in the first pass.
  cat > "$SPOOL/req-a.json" <<'EOF'
{"id":"req-a","topology":"slim_fly:5","algorithm":"minimal","pattern":"uniform","steps":8,"duration_ns":60000,"warmup_ns":10000,"seed":21}
EOF
  cat > "$SPOOL/req-b.json" <<'EOF'
{"id":"req-b","topology":"mlfm:4","algorithm":"valiant","pattern":"uniform","loads":[0.2,0.5],"duration_ns":8000,"warmup_ns":1500,"seed":22}
EOF
  # Uninterrupted baseline for request A.
  cp "$SPOOL/req-a.json" "$SPOOL/clean/req-a.json"
  "$SERVE" "$SPOOL/clean" --out "$SPOOL/clean" --once > /dev/null

  cp "$SPOOL/req-a.json" "$SPOOL/req-b.json" "$SPOOL/spool/"
  "$SERVE" "$SPOOL/spool" --out "$SPOOL/out" --workers 1 &
  SRV=$!
  # SIGTERM once request A's journal holds at least two completed
  # points (header + 2 lines) — i.e. genuinely mid-sweep.
  for _ in $(seq 1 600); do
    LINES=$(wc -l < "$SPOOL/out/req-a.journal" 2>/dev/null || echo 0)
    [[ "$LINES" -ge 3 ]] && break
    sleep 0.05
  done
  kill -TERM "$SRV"
  wait "$SRV"
  test -f "$SPOOL/spool/req-a.json"        # interrupted request stays spooled
  test -f "$SPOOL/out/req-a.journal"       # with its journal
  # Restart drains the spool, resuming request A from the journal.
  "$SERVE" "$SPOOL/spool" --out "$SPOOL/out" --once
  test ! -e "$SPOOL/spool/req-a.json"
  grep -q '"supervision"' "$SPOOL/out/req-a.manifest.json"
  grep -q '"skipped_by_resume":' "$SPOOL/out/req-a.manifest.json"
  grep -q '"schema":"d2net.run-manifest/v1"' "$SPOOL/out/req-b.manifest.json"
  # The resumed manifest must byte-equal the uninterrupted one modulo
  # the supervision section (the one legitimate difference).
  sed 's/"supervision":{[^{}]*},//' "$SPOOL/out/req-a.manifest.json" > "$SPOOL/resumed_stripped.json"
  cmp "$SPOOL/resumed_stripped.json" "$SPOOL/clean/req-a.manifest.json"
  trap - EXIT
  rm -rf "$SPOOL"
fi

if [[ "$OBS_SMOKE" == "1" ]]; then
  echo "== obs smoke: status endpoint, metrics grammar, event log, live top =="
  cargo build --release --example d2net-serve --example d2net-top
  SERVE=target/release/examples/d2net-serve
  TOP=target/release/examples/d2net-top
  OBSD=$(mktemp -d)
  trap 'rm -rf "$OBSD"' EXIT
  mkdir -p "$OBSD/spool" "$OBSD/out"
  cat > "$OBSD/spool/req-obs.json" <<'EOF'
{"id":"req-obs","topology":"slim_fly:5","algorithm":"minimal","pattern":"uniform","steps":6,"duration_ns":30000,"warmup_ns":5000,"seed":33}
EOF
  "$SERVE" "$OBSD/spool" --out "$OBSD/out" --status-addr 127.0.0.1:0 \
    --events "$OBSD/events.jsonl" > "$OBSD/serve.log" &
  SRV=$!
  # The service binds port 0 and prints the resolved address.
  ADDR=
  for _ in $(seq 1 200); do
    ADDR=$(sed -n 's/^d2net-serve: status listening on //p' "$OBSD/serve.log" | head -1)
    [[ -n "$ADDR" ]] && break
    sleep 0.05
  done
  test -n "$ADDR"
  # Wait until the spooled request has fully completed so the lifecycle
  # codes and final counters are all in place.
  for _ in $(seq 1 600); do
    [[ -f "$OBSD/out/req-obs.manifest.json" ]] && break
    sleep 0.05
  done
  test -f "$OBSD/out/req-obs.manifest.json"
  # Dashboard probe: d2net-top exits non-zero on unreachable endpoints,
  # failed health checks, or exposition-grammar violations.
  "$TOP" --status "$ADDR" --once | tee "$OBSD/top.txt"
  grep -q 'points:' "$OBSD/top.txt"
  grep -q 'healthy' "$OBSD/top.txt"
  # Raw exposition carries the progress counters and service gauges.
  "$TOP" --status "$ADDR" --once --raw > "$OBSD/metrics.txt"
  grep -q '^d2net_spool_depth ' "$OBSD/metrics.txt"
  grep -q '^d2net_inflight_requests ' "$OBSD/metrics.txt"
  grep -q '^d2net_points_per_sec ' "$OBSD/metrics.txt"
  grep -q '^d2net_points_scheduled_total 6$' "$OBSD/metrics.txt"
  grep -q '^d2net_requests_total{outcome="completed"} 1$' "$OBSD/metrics.txt"
  kill -TERM "$SRV"
  wait "$SRV"
  grep -q 'drained and exiting' "$OBSD/serve.log"
  # The event log: schema header plus service/request lifecycle codes.
  head -1 "$OBSD/events.jsonl" | grep -q 'd2net.events/v1'
  grep -q '"code":"service_start"' "$OBSD/events.jsonl"
  grep -q '"code":"request_spooled"' "$OBSD/events.jsonl"
  grep -q '"code":"request_started"' "$OBSD/events.jsonl"
  grep -q '"code":"request_completed"' "$OBSD/events.jsonl"
  grep -q '"code":"sweep_start"' "$OBSD/events.jsonl"
  grep -q '"code":"point_run"' "$OBSD/events.jsonl"
  grep -q '"code":"service_stop"' "$OBSD/events.jsonl"
  # The tail view parses every line or dies.
  "$TOP" --events "$OBSD/events.jsonl" --once > /dev/null
  trap - EXIT
  rm -rf "$OBSD"
fi

if [[ "$BENCH_DIFF" == "1" ]]; then
  echo "== bench diff: history from two real runs, verdicts, planted regression trips =="
  cargo build --release -p d2net-bench --bin bench_engine --bin bench_diff
  BENGINE=target/release/bench_engine
  BDIFF=target/release/bench_diff
  DIFFD=$(mktemp -d)
  trap 'rm -rf "$DIFFD"' EXIT
  HIST="$DIFFD/bench_history.jsonl"
  D2NET_BENCH_DURATION_NS=10000 "$BENGINE" "$DIFFD/BENCH_engine_a.json"
  D2NET_BENCH_DURATION_NS=10000 "$BENGINE" "$DIFFD/BENCH_engine_b.json"
  "$BDIFF" append "$DIFFD/BENCH_engine_a.json" --history "$HIST" --label base
  "$BDIFF" append "$DIFFD/BENCH_engine_b.json" --history "$HIST" --label head
  # Two real smoke runs: verdicts must appear. The wide threshold keeps
  # CI timing noise from tripping the gate here.
  "$BDIFF" compare --history "$HIST" --threshold 0.9 | tee "$DIFFD/diff.txt"
  grep -Eq 'REGRESSION|IMPROVEMENT|NEUTRAL' "$DIFFD/diff.txt"
  # Plant a regression (documented --scale test hook); the gate must
  # trip with a non-zero exit and name the regressed groups.
  "$BDIFF" append "$DIFFD/BENCH_engine_b.json" --history "$HIST" --label planted --scale 0.4
  if "$BDIFF" compare --history "$HIST" --threshold 0.15 > "$DIFFD/diff_regression.txt"; then
    echo "ci.sh: planted regression did not trip the bench gate" >&2
    exit 1
  fi
  grep -q 'REGRESSION' "$DIFFD/diff_regression.txt"
  trap - EXIT
  rm -rf "$DIFFD"
fi

echo "ci.sh: all green"
