#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline — all dependencies are
# vendored in vendor/ and wired up via [workspace.dependencies].
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test -q --release --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== static verification gate (paper-standard configs) =="
cargo run --release --example d2net-verify -- --paper-gate

echo "ci.sh: all green"
